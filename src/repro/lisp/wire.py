"""Byte-accurate wire codecs for the LISP control messages used by SDA.

The simulator passes message *objects* through the underlay for speed,
but the wire formats are part of the system being reproduced (RFC 6833bis
layouts), so this module provides real encoders/decoders used by the
codec tests and available to anyone embedding the library in a packet
tool.  Supported messages and their type codes:

====  =========================
1     Map-Request
2     Map-Reply
3     Map-Register
4     Map-Notify
====  =========================

Simplifications relative to the full RFC (documented, not silent):

* exactly one record and one locator per message (all SDA needs here);
* authentication data is carried as a fixed 20-byte HMAC field whose
  content the simulator does not verify;
* the Instance ID (the VN) rides in a LISP-CP LCAF-style prefix of the
  EID record, encoded as a plain 32-bit field before the EID.
"""

from __future__ import annotations

import struct

from repro.core.errors import EncapsulationError
from repro.core.types import VNId
from repro.net.addresses import IPv4Address, IPv6Address, MacAddress, Prefix

TYPE_MAP_REQUEST = 1
TYPE_MAP_REPLY = 2
TYPE_MAP_REGISTER = 3
TYPE_MAP_NOTIFY = 4

#: LISP AFI codes (IANA Address Family Numbers).
AFI_IPV4 = 1
AFI_IPV6 = 2
AFI_MAC = 16389

_AFI_BY_FAMILY = {"ipv4": AFI_IPV4, "ipv6": AFI_IPV6, "mac": AFI_MAC}
_CLASS_BY_AFI = {AFI_IPV4: IPv4Address, AFI_IPV6: IPv6Address, AFI_MAC: MacAddress}
_LENGTH_BY_AFI = {AFI_IPV4: 4, AFI_IPV6: 16, AFI_MAC: 6}

_AUTH_LEN = 20


def _encode_eid(vn, eid):
    """(instance id, AFI, mask length, address bytes)."""
    afi = _AFI_BY_FAMILY[eid.family]
    return struct.pack("!IHB", int(vn), afi, eid.length) + eid.address.to_bytes()


def _decode_eid(data, offset):
    vn_value, afi, mask = struct.unpack_from("!IHB", data, offset)
    offset += 7
    length = _LENGTH_BY_AFI.get(afi)
    if length is None:
        raise EncapsulationError("unknown EID AFI %d" % afi)
    address = _CLASS_BY_AFI[afi].from_bytes(data[offset:offset + length])
    offset += length
    return VNId(vn_value), Prefix(address, mask), offset


def _encode_rloc(rloc):
    return struct.pack("!H", AFI_IPV4) + rloc.to_bytes()


def _decode_rloc(data, offset):
    (afi,) = struct.unpack_from("!H", data, offset)
    offset += 2
    if afi != AFI_IPV4:
        raise EncapsulationError("RLOCs must be IPv4 in SDA, got AFI %d" % afi)
    rloc = IPv4Address.from_bytes(data[offset:offset + 4])
    return rloc, offset + 4


def encode_map_request(nonce, vn, eid, reply_to):
    """Map-Request: header + ITR-RLOC + EID record."""
    header = struct.pack("!BxxxQ", TYPE_MAP_REQUEST << 4, nonce & ((1 << 64) - 1))
    return header + _encode_rloc(reply_to) + _encode_eid(vn, eid)


def decode_map_request(data):
    kind = data[0] >> 4
    if kind != TYPE_MAP_REQUEST:
        raise EncapsulationError("not a Map-Request (type %d)" % kind)
    (nonce,) = struct.unpack_from("!Q", data, 4)
    reply_to, offset = _decode_rloc(data, 12)
    vn, eid, _ = _decode_eid(data, offset)
    return {"nonce": nonce, "vn": vn, "eid": eid, "reply_to": reply_to}


def encode_map_reply(nonce, vn, eid, rloc=None, ttl_s=86400, version=1):
    """Map-Reply: negative when ``rloc`` is None (locator count 0)."""
    locator_count = 0 if rloc is None else 1
    header = struct.pack(
        "!BxBxQ", TYPE_MAP_REPLY << 4, locator_count, nonce & ((1 << 64) - 1)
    )
    record = struct.pack("!IH", int(ttl_s), version & 0xFFFF) + _encode_eid(vn, eid)
    body = header + record
    if rloc is not None:
        body += _encode_rloc(rloc)
    return body


def decode_map_reply(data):
    kind = data[0] >> 4
    if kind != TYPE_MAP_REPLY:
        raise EncapsulationError("not a Map-Reply (type %d)" % kind)
    locator_count = data[2]
    (nonce,) = struct.unpack_from("!Q", data, 4)
    ttl_s, version = struct.unpack_from("!IH", data, 12)
    vn, eid, offset = _decode_eid(data, 18)
    rloc = None
    if locator_count:
        rloc, offset = _decode_rloc(data, offset)
    return {"nonce": nonce, "vn": vn, "eid": eid, "rloc": rloc,
            "ttl_s": ttl_s, "version": version,
            "negative": locator_count == 0}


def encode_map_register(nonce, vn, eid, rloc, want_notify=True, auth=b""):
    flags = 0x01 if want_notify else 0x00   # M bit (want-map-notify)
    header = struct.pack(
        "!BxxBQ", TYPE_MAP_REGISTER << 4, flags, nonce & ((1 << 64) - 1)
    )
    auth_field = (auth + b"\x00" * _AUTH_LEN)[:_AUTH_LEN]
    return header + auth_field + _encode_eid(vn, eid) + _encode_rloc(rloc)


def decode_map_register(data):
    kind = data[0] >> 4
    if kind != TYPE_MAP_REGISTER:
        raise EncapsulationError("not a Map-Register (type %d)" % kind)
    want_notify = bool(data[3] & 0x01)
    (nonce,) = struct.unpack_from("!Q", data, 4)
    offset = 12 + _AUTH_LEN
    vn, eid, offset = _decode_eid(data, offset)
    rloc, _ = _decode_rloc(data, offset)
    return {"nonce": nonce, "vn": vn, "eid": eid, "rloc": rloc,
            "want_notify": want_notify}


def encode_map_notify(nonce, vn, eid, rloc, auth=b""):
    header = struct.pack("!BxxxQ", TYPE_MAP_NOTIFY << 4, nonce & ((1 << 64) - 1))
    auth_field = (auth + b"\x00" * _AUTH_LEN)[:_AUTH_LEN]
    return header + auth_field + _encode_eid(vn, eid) + _encode_rloc(rloc)


def decode_map_notify(data):
    kind = data[0] >> 4
    if kind != TYPE_MAP_NOTIFY:
        raise EncapsulationError("not a Map-Notify (type %d)" % kind)
    (nonce,) = struct.unpack_from("!Q", data, 4)
    offset = 12 + _AUTH_LEN
    vn, eid, offset = _decode_eid(data, offset)
    rloc, _ = _decode_rloc(data, offset)
    return {"nonce": nonce, "vn": vn, "eid": eid, "rloc": rloc}


def message_type(data):
    """Peek the LISP type code of an encoded control message."""
    if not data:
        raise EncapsulationError("empty LISP message")
    return data[0] >> 4
