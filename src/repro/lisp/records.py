"""Mapping records and the routing server's mapping database.

The database is organized exactly as the paper describes (sec. 4.1):
hierarchical state in Patricia tries, one per (VN, address family), keyed
by EID prefix.  Endpoints register three EIDs each — IPv4, IPv6 and MAC —
which is why the paper divides its 10k-route measurement by 3 to estimate
~3k endpoints per server.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.core.types import VNId
from repro.net.addresses import Prefix
from repro.net.trie import PatriciaTrie


class MappingRecord:
    """One EID-to-RLOC mapping held by the routing server.

    Attributes
    ----------
    vn / eid:
        The lookup key: a :class:`VNId` plus an EID :class:`Prefix`
        (host prefixes for endpoints; shorter prefixes are legal and used
        for aggregates like the border's external routes).
    rloc:
        Underlay address of the edge router currently serving the EID.
    group:
        The endpoint's GroupId (stored at registration, from onboarding).
    version:
        Bumped on every update; lets caches discard out-of-order refreshes.
    registered_at:
        Simulated time of the last register (0 when used outside a sim).
    ttl:
        Advisory cache lifetime in seconds for Map-Reply consumers.
    """

    __slots__ = ("vn", "eid", "rloc", "group", "mac", "version", "registered_at", "ttl")

    DEFAULT_TTL = 24 * 3600.0

    def __init__(self, vn, eid, rloc, group=None, mac=None, version=1,
                 registered_at=0.0, ttl=None):
        self.vn = vn if isinstance(vn, VNId) else VNId(vn)
        if not isinstance(eid, Prefix):
            raise ConfigurationError("EID must be a Prefix, got %r" % (eid,))
        self.eid = eid
        self.rloc = rloc
        self.group = group
        #: MAC of the endpoint owning an IP EID — the "overlay IP to MAC
        #: pairs in the routing server" of sec. 3.5 (L2/ARP services).
        self.mac = mac
        self.version = version
        self.registered_at = registered_at
        self.ttl = self.DEFAULT_TTL if ttl is None else ttl

    def copy(self):
        return MappingRecord(
            self.vn, self.eid, self.rloc, group=self.group, mac=self.mac,
            version=self.version, registered_at=self.registered_at, ttl=self.ttl,
        )

    def __repr__(self):
        return "MappingRecord(vn=%d, %s -> %s, v%d)" % (
            int(self.vn), self.eid, self.rloc, self.version
        )


class MappingDatabase:
    """Per-(VN, family) Patricia tries holding :class:`MappingRecord`.

    Pure data structure — no simulation, no messaging — so it can be
    benchmarked directly (fig. 7's object of study) and reused by both the
    routing server and the proactive BGP baseline's RIB.
    """

    def __init__(self):
        self._tries = {}   # (int(vn), family) -> PatriciaTrie
        self._count = 0
        #: version tombstones: last version ever issued per (vn, eid).
        #: Versions must stay monotonic across unregister/re-register
        #: cycles, or caches holding the pre-departure version reject
        #: the fresh mapping as stale (map-versioning semantics).
        self._versions = {}

    def __len__(self):
        return self._count

    def _trie(self, vn, family, create=False):
        key = (int(vn), family)
        trie = self._tries.get(key)
        if trie is None and create:
            trie = PatriciaTrie(family)
            self._tries[key] = trie
        return trie

    def register(self, record):
        """Insert or update; returns the previous record or ``None``.

        The stored version is strictly greater than any version this
        database ever issued for the same (VN, EID) — including through
        unregister/re-register cycles.
        """
        trie = self._trie(record.vn, record.eid.family, create=True)
        previous = trie.lookup_exact(record.eid)
        key = (int(record.vn), record.eid)
        record.version = max(record.version,
                             self._versions.get(key, 0) + 1)
        trie.insert(record.eid, record)
        if previous is None:
            self._count += 1
        self._versions[key] = record.version
        return previous

    def unregister(self, vn, eid, rloc=None):
        """Remove the exact mapping.

        When ``rloc`` is given, removal only happens if the stored record
        still points at that RLOC — protecting against an old edge
        deregistering an endpoint that already moved elsewhere.
        Returns the removed record or ``None``.
        """
        trie = self._trie(vn, eid.family)
        if trie is None:
            return None
        record = trie.lookup_exact(eid)
        if record is None:
            return None
        if rloc is not None and record.rloc != rloc:
            return None
        trie.delete(eid)
        self._count -= 1
        return record

    def lookup(self, vn, eid_or_address):
        """Longest-prefix match inside a VN; returns a record or ``None``."""
        if isinstance(eid_or_address, Prefix):
            family = eid_or_address.family
            key = eid_or_address
        else:
            family = eid_or_address.family
            key = eid_or_address.to_prefix()
        trie = self._trie(vn, family)
        if trie is None:
            return None
        hit = trie.lookup_longest(key)
        return hit[1] if hit else None

    def lookup_exact(self, vn, eid):
        trie = self._trie(vn, eid.family)
        if trie is None:
            return None
        return trie.lookup_exact(eid)

    def records(self, vn=None, family=None):
        """Yield all records, optionally filtered by VN and/or family."""
        for (trie_vn, trie_family), trie in self._tries.items():
            if vn is not None and trie_vn != int(vn):
                continue
            if family is not None and trie_family != family:
                continue
            for _prefix, record in trie.items():
                yield record

    def count(self, vn=None, family=None):
        if vn is None and family is None:
            return self._count
        return sum(1 for _ in self.records(vn, family))

    def adopt_versions(self, other):
        """Carry another database's version floor into this one.

        Used on a routing-server cold restart: records are volatile but
        the version counters must survive (stable-storage epoch), or
        post-restart registrations would re-issue versions that caches
        already hold and discard as stale.
        """
        for key, version in other._versions.items():
            if version > self._versions.get(key, 0):
                self._versions[key] = version

    def clear(self):
        self._tries = {}
        self._count = 0
        self._versions = {}
