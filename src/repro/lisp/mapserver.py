"""The SDA routing server (LISP map-server + map-resolver + pubsub).

Responsibilities (paper sec. 3.2.2):

* keep endpoint location state — pairs of (VN + overlay EID) -> underlay
  RLOC — in a :class:`MappingDatabase` (Patricia tries);
* answer Map-Requests reactively;
* accept Map-Registers, and on a *mobility* re-register, notify the
  previous edge router so it can redirect in-flight traffic (fig. 5);
* push every change to pub/sub subscribers (the border routers).

Performance model
-----------------
The server processes messages through a single FIFO queue.  Per-message
service time is::

    service = base + per_bit * key_bits + jitter

``key_bits`` is the trie key width (32/48/128) — *not* a function of how
many routes are installed.  This reproduces the fig. 7a/7b observation
(flat delay vs. #routes: Patricia trie depth bounds the work) while giving
the fig. 7c behaviour (delay grows with queries/s as the queue builds).
"""

from __future__ import annotations

from repro.core.counters import Counters
from repro.core.errors import ConfigurationError
from repro.core.queueing import (
    PRIO_BULK,
    PRIO_CRITICAL,
    PRIO_NORMAL,
    SerialQueue,
)
from repro.lisp.messages import (
    MapNotify,
    MapRegister,
    MapReply,
    MapRequest,
    MapUnregister,
    PublishUpdate,
    SubscribeRequest,
    control_packet,
)
from repro.lisp.records import MappingDatabase, MappingRecord
from repro.sim.rng import SeededRng


class RoutingServerStats(Counters):
    """Counters exposed for the experiments."""

    FIELDS = (
        "requests",
        "registers",
        "register_records",
        "batched_registers",
        "mobility_registers",
        "unregisters",
        "negative_replies",
        "notifies_sent",
        "publishes_sent",
        "registrar_acks",
        "max_queue_depth",
        "crashes",
        "restarts",
        "dropped_while_down",
        "expired_registrations",
    )


class RoutingServer:
    """The centralized routing server, attached to the underlay as a device.

    Parameters
    ----------
    sim / underlay:
        Simulation kernel and the underlay to attach to.  ``underlay`` may
        be ``None`` for direct benchmarking of the database/service model
        (fig. 7 uses :meth:`service_time` and :meth:`handle_message`
        through a synthetic driver).
    rloc / node:
        The server's underlay address and attachment point.
    base_service_s / per_bit_service_s / service_jitter_s:
        The service time model; defaults calibrated so a lone request
        takes ~200 microseconds, matching the order of magnitude of a
        software map-server, though only *relative* delays are reported.
    max_pending / max_backlog_s:
        Overload armor (default off = the seed's unbounded FIFO).  When
        either bound is set, arriving messages pass priority-aware
        admission control: periodic refresh registers shed first, then
        first-time registers, and Map-Requests / roam registers are
        served until the queue is truly full (tail drop).  Shed messages
        are simply never answered — senders recover through their
        retry/refresh machinery once load subsides.
    backpressure_threshold:
        Queue pressure (fraction of the tightest bound) above which
        registrar acks carry the in-band ``overloaded`` bit so edges /
        WLCs widen their batching windows and stretch refreshes.
    """

    def __init__(self, sim, underlay=None, rloc=None, node=None,
                 base_service_s=300e-6, per_bit_service_s=1.5e-6,
                 service_jitter_s=30e-6, seed=11,
                 max_pending=None, max_backlog_s=None,
                 backpressure_threshold=0.5):
        self.sim = sim
        self.underlay = underlay
        self.rloc = rloc
        self.database = MappingDatabase()
        self.stats = RoutingServerStats()
        self.base_service_s = base_service_s
        self.per_bit_service_s = per_bit_service_s
        self.service_jitter_s = service_jitter_s
        self._rng = SeededRng(seed)
        #: the control-plane FIFO (bounded when the overload knobs are
        #: set); shed/pressure accounting lives on the queue itself
        self.queue = SerialQueue(sim, max_depth=max_pending,
                                 max_backlog_s=max_backlog_s)
        self.queue.on_stale = self._on_stale_work
        self.backpressure_threshold = backpressure_threshold
        #: registrar acks that carried the overloaded bit (plain attr —
        #: not a ledger field, so default-off runs stay bit-identical)
        self.overload_signals = 0
        self._subscribers = {}   # rloc -> vn filter (None = all)
        #: crash/restart state (chaos suite): while down, every arriving
        #: message is dropped; the queue's epoch guard discards work
        #: that was already queued when the process died.
        self.crashed = False
        #: non-volatile configuration replayed on a cold restart —
        #: delegations are installed by the operator, not learned.
        self._config_delegates = []
        #: optional hook ``(message, finish_time)`` fired after processing;
        #: the fig. 7 driver uses it to measure per-message response delay.
        self.on_processed = None
        #: trace context of the message currently being processed; every
        #: message _send()t from inside a handler inherits it, which is
        #: how notifies/acks/replies/publishes join the caller's trace
        self._active_ctx = None
        if underlay is not None:
            if rloc is None or node is None:
                raise ConfigurationError("attached server needs rloc and node")
            underlay.attach(rloc, node, self._on_packet)

    # -- service model -------------------------------------------------------------
    def service_time(self, message):
        """Service time for one message; independent of table occupancy.

        A batched register pays the base (and jitter) once and the
        per-bit trie work once *per record* — the amortization the
        control-plane fast path exists for.
        """
        records = getattr(message, "records", None)
        if records:
            key_bits = sum(record.eid.bits for record in records)
        else:
            key_bits = 32
            eid = getattr(message, "eid", None)
            if eid is not None:
                key_bits = eid.bits
        jitter = self._rng.uniform(0, self.service_jitter_s)
        return self.base_service_s + self.per_bit_service_s * key_bits + jitter

    def _classify(self, message):
        """Admission priority class (only consulted on a bounded queue)."""
        if message.kind == MapRegister.kind:
            if message.refresh:
                # Periodic keepalive: the state it re-asserts is still
                # there; losing one costs nothing until the TTL sweep.
                return PRIO_BULK
            if message.records is None:
                return PRIO_CRITICAL if message.mobility else PRIO_NORMAL
            for record in message.records:
                if record.mobility:
                    return PRIO_CRITICAL
            return PRIO_NORMAL
        # Map-Requests (a user is waiting), unregisters, subscribes.
        return PRIO_CRITICAL

    def _enqueue(self, message, completion):
        """FIFO queue: compute when this message's processing finishes."""
        queue = self.queue
        if queue.bounded and not queue.admit(self._classify(message)):
            # Shed before the service-time draw: a dropped message is
            # never serviced, so it must not consume RNG state either.
            return
        wait = queue.backlog_s
        service = self.service_time(message)
        tracer = self.sim.tracer
        span = None
        if tracer.enabled:
            # The FIFO model knows both queue wait and service time at
            # enqueue time — stamp them on the span up front.
            span = tracer.span(
                "mapserver." + message.kind, device=self,
                parent=message.trace_ctx,
                queue_wait_s=wait, service_s=service,
                records=getattr(message, "record_count", 1),
            )
        queue.submit(service, self._complete, message, completion, span)
        if queue.depth > self.stats.max_queue_depth:
            self.stats.max_queue_depth = queue.depth

    def _on_stale_work(self, fn, args):
        # Queued before a crash: the process that owed this work is
        # gone (its queue state was reset with it).
        span = args[2] if len(args) > 2 else None
        if span is not None:
            span.finish(outcome="lost_in_crash")

    def _complete(self, message, completion, span=None):
        if span is not None:
            self._active_ctx = span.ctx
            try:
                completion(message)
            finally:
                self._active_ctx = None
                span.finish()
        else:
            completion(message)
        if self.on_processed is not None:
            self.on_processed(message, self.sim.now)

    @property
    def _queue_depth(self):
        """Back-compat alias (observability gauges read it)."""
        return self.queue.depth

    def _overloaded(self):
        """True while the bounded queue is past the backpressure bar."""
        return (self.queue.bounded
                and self.queue.pressure >= self.backpressure_threshold)

    # -- transport ---------------------------------------------------------------------
    def _on_packet(self, packet):
        message = packet.payload
        self.handle_message(message)

    def handle_message(self, message):
        """Entry point for all control messages (queued, then dispatched)."""
        if self.crashed:
            # In-flight packets can still arrive after the IGP withdrew
            # the announcement; a dead process answers nothing.
            self.stats.dropped_while_down += 1
            return
        handler = {
            MapRequest.kind: self._process_request,
            MapRegister.kind: self._process_register,
            MapUnregister.kind: self._process_unregister,
            SubscribeRequest.kind: self._process_subscribe,
        }.get(message.kind)
        if handler is None:
            raise ConfigurationError("routing server got %r" % message.kind)
        self._enqueue(message, handler)

    def _send(self, dst_rloc, message):
        if self.underlay is None or dst_rloc is None:
            return
        if self._active_ctx is not None:
            message.trace_ctx = self._active_ctx
        self.underlay.send(self.rloc, dst_rloc, control_packet(self.rloc, dst_rloc, message))

    # -- message processing --------------------------------------------------------------
    def _process_request(self, request):
        self.stats.requests += 1
        record = self.database.lookup(request.vn, request.eid)
        reply_record = record.copy() if record is not None else None
        if reply_record is None:
            self.stats.negative_replies += 1
        reply = MapReply(request.vn, request.eid, reply_record, nonce=request.nonce)
        self._send(request.reply_to, reply)

    def _process_register(self, register):
        """Apply a register message — single-record or batched.

        A batch is applied atomically within one service slot, record by
        record in submission order (so an in-band withdrawal cannot be
        reordered against the registration it supersedes), with exactly
        one version bump per record.  Fig. 5 notifies to previous edges
        are aggregated per edge, and the registrar — if it asked for an
        ack — gets a single Map-Notify carrying every committed record.
        """
        self.stats.registers += 1
        batched = register.records is not None
        if batched:
            self.stats.batched_registers += 1
        committed = []             # record copies for the aggregated ack
        pending_notifies = {}      # previous rloc -> [record copies]
        for eid_record in register.eid_records:
            eid = eid_record.eid
            if eid_record.withdraw:
                self.stats.unregisters += 1
                removed = self.database.unregister(
                    eid_record.vn, eid, eid_record.rloc
                )
                if removed is not None:
                    self._publish(eid_record.vn, eid, None)
                continue
            self.stats.register_records += 1
            record = MappingRecord(
                eid_record.vn, eid, eid_record.rloc, group=eid_record.group,
                mac=eid_record.mac,
                registered_at=self.sim.now,
                ttl=eid_record.ttl,
            )
            previous = self.database.register(record)
            moved = previous is not None and previous.rloc != eid_record.rloc
            if moved:
                self.stats.mobility_registers += 1
                # Fig. 5 step 2: tell the previous edge to pull the new
                # location and redirect in-flight traffic (aggregated
                # per previous edge when several records moved off it).
                pending_notifies.setdefault(previous.rloc, []).append(
                    record.copy()
                )
            if previous is None or moved:
                self._publish(eid_record.vn, eid, record)
            committed.append(record.copy())
        for previous_rloc, records in pending_notifies.items():
            self.stats.notifies_sent += 1
            if len(records) == 1:
                notify = MapNotify(records[0].vn, records[0].eid, records[0])
            else:
                notify = MapNotify(records=records)
            self._send(previous_rloc, notify)
        if register.registrar_rloc is not None and committed:
            # Proxied registration (fabric wireless): ack the registrar
            # with the committed record(s) so it can fan the
            # authoritative version out to edges holding stale state.
            # The register's nonce is echoed so the registrar can match
            # the ack to the exact registration instance (not just the
            # EID/RLOC pair).
            self.stats.registrar_acks += 1
            if not batched:
                ack = MapNotify(register.vn, register.eid, committed[0],
                                nonce=register.nonce)
            else:
                ack = MapNotify(records=committed, nonce=register.nonce)
            if self._overloaded():
                # In-band backpressure: tell the registrar to widen its
                # batch window / stretch its refresh period.
                ack.overloaded = True
                self.overload_signals += 1
            self._send(register.registrar_rloc, ack)

    def _process_unregister(self, unregister):
        self.stats.unregisters += 1
        removed = self.database.unregister(unregister.vn, unregister.eid, unregister.rloc)
        if removed is not None:
            self._publish(unregister.vn, unregister.eid, None)

    def _process_subscribe(self, subscribe):
        self._subscribers[subscribe.subscriber_rloc] = subscribe.vn
        # Initial full-state push so a late subscriber converges.
        for record in list(self.database.records(vn=subscribe.vn)):
            self.stats.publishes_sent += 1
            self._send(
                subscribe.subscriber_rloc,
                PublishUpdate(record.vn, record.eid, record.copy()),
            )

    def _publish(self, vn, eid, record):
        for subscriber_rloc, vn_filter in self._subscribers.items():
            if vn_filter is not None and int(vn_filter) != int(vn):
                continue
            self.stats.publishes_sent += 1
            payload = record.copy() if record is not None else None
            self._send(subscriber_rloc, PublishUpdate(vn, eid, payload))

    # -- crash / cold restart (chaos suite) -----------------------------------------------
    def crash(self):
        """The server process dies: volatile map state is gone.

        The mapping database, the pub/sub subscriber table and the FIFO
        queue are all process memory — a cold restart starts from
        nothing but configuration.  The only thing carried across is
        the per-EID version floor (:meth:`MappingDatabase
        .adopt_versions`), modelling the stable-storage version epoch
        real map-versioning needs: without it, every cache holding a
        pre-crash version would reject the fresher post-restart mapping
        as stale, forever.
        """
        if self.crashed:
            return
        self.crashed = True
        self.stats.crashes += 1
        fresh = MappingDatabase()
        fresh.adopt_versions(self.database)
        self.database = fresh
        self._subscribers = {}
        self.queue.reset()
        if self.underlay is not None:
            self.underlay.set_announced(self.rloc, False)

    def restart(self):
        """Cold restart: replay configuration, rejoin the IGP, serve.

        Learned state comes back only through recovery traffic — the
        borders' re-subscription and the edges'/registrars' registration
        refresh storm (the PR 3 batching pipeline absorbs it).
        """
        if not self.crashed:
            return
        self.crashed = False
        self.stats.restarts += 1
        for vn, prefix, rloc, ttl in self._config_delegates:
            record = MappingRecord(vn, prefix, rloc,
                                   registered_at=self.sim.now, ttl=ttl)
            self.database.register(record)
        if self.underlay is not None:
            self.underlay.set_announced(self.rloc, True)

    # -- registration TTL (soft state) ----------------------------------------------------
    def expire_stale_registrations(self, ttl_s=None):
        """Drop host registrations not refreshed within their TTL.

        ``ttl_s`` caps every record's own advisory TTL (the sweep knob
        chaos runs pair with the edges' registration refresh).  Only
        host routes expire — delegations and aggregates are
        configuration.  Returns the number of expired records.
        """
        now = self.sim.now
        expired = [
            record for record in self.database.records()
            if record.eid.is_host
            and record.registered_at
            + (record.ttl if ttl_s is None else min(record.ttl, ttl_s))
            <= now
        ]
        for record in expired:
            removed = self.database.unregister(record.vn, record.eid,
                                               record.rloc)
            if removed is not None:
                self.stats.expired_registrations += 1
                self._publish(record.vn, record.eid, None)
        return len(expired)

    def start_registration_sweep(self, interval_s, ttl_s=None):
        """Run :meth:`expire_stale_registrations` periodically (daemon)."""
        self.sim.schedule_daemon(interval_s, self._sweep_tick,
                                 interval_s, ttl_s)

    def _sweep_tick(self, interval_s, ttl_s):
        if not self.crashed:
            self.expire_stale_registrations(ttl_s)
        self.sim.schedule_daemon(interval_s, self._sweep_tick,
                                 interval_s, ttl_s)

    # -- direct API (setup & benchmarks) --------------------------------------------------
    def install_delegate(self, vn, prefix, rloc, ttl=None):
        """Delegate a coarse EID prefix to another device (multi-site).

        Any lookup under ``prefix`` without a more-specific registration
        resolves to ``rloc`` — in a multi-site fabric that is the local
        border, which owns transit-side resolution.  Installed at
        configuration time (not via the message queue) and pushed to
        pub/sub subscribers so borders learn their own delegation.
        """
        if prefix.is_host:
            raise ConfigurationError(
                "delegate prefix %s is a host route; delegation is for aggregates"
                % prefix
            )
        record = MappingRecord(vn, prefix, rloc, registered_at=self.sim.now,
                               ttl=ttl)
        self._config_delegates.append((record.vn, prefix, rloc, ttl))
        self.database.register(record)
        self._publish(record.vn, prefix, record)
        return record

    def preload(self, records):
        """Install mappings without simulation (experiment setup)."""
        for record in records:
            self.database.register(record)

    @property
    def route_count(self):
        return len(self.database)
