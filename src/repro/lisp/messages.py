"""LISP control plane message types.

Messages travel through the underlay as the payload of small UDP packets
(port 4342, like real LISP).  They are plain value objects; the wire
format is not byte-serialized because no experiment depends on LISP bit
layout (unlike VXLAN-GPO, whose group field placement *is* part of the
design).
"""

from __future__ import annotations

import itertools

from repro.net.packet import IpHeader, Packet, UdpHeader

#: IANA LISP control plane port.
LISP_PORT = 4342

#: Wire size charged for a control message, bytes (header + one record).
CONTROL_MESSAGE_SIZE = 120

#: Incremental wire size per additional EID-record in a batched message.
RECORD_SIZE = 40

_nonce_counter = itertools.count(1)


def next_nonce():
    """Monotonic nonce; deterministic across runs (no randomness)."""
    return next(_nonce_counter)


class ControlMessage:
    """Base class: every message has a nonce for request/reply matching.

    ``trace_ctx`` carries an optional observability trace context —
    the ``(trace_id, span_id)`` of the span that emitted the message —
    so a receiver can parent its own span causally (in-band telemetry,
    like INT carries state in the packet itself).  ``None`` whenever
    tracing is off; it never affects protocol behaviour or wire size.
    """

    __slots__ = ("nonce", "trace_ctx")

    kind = "control"

    def __init__(self, nonce=None):
        self.nonce = next_nonce() if nonce is None else nonce
        self.trace_ctx = None


class EidRecord:
    """One EID-record inside a batched Map-Register.

    Real Map-Registers carry a record *count* and a list of EID-records
    (RFC 6833 fig. 11); this is that record.  ``withdraw=True`` makes
    the record an in-band unregister — batched pipelines must carry
    withdrawals through the same FIFO as registrations, or a buffered
    register can be applied *after* the unregister that was meant to
    supersede it (ghost-mapping race).  ``rloc`` doubles as the
    unregister guard: a withdrawal only removes the mapping while it
    still points at that RLOC.
    """

    __slots__ = ("vn", "eid", "rloc", "group", "mac", "mobility", "ttl",
                 "withdraw", "refresh")

    def __init__(self, vn, eid, rloc, group=None, mac=None, mobility=False,
                 ttl=None, withdraw=False, refresh=False):
        self.vn = vn
        self.eid = eid
        self.rloc = rloc
        self.group = group
        self.mac = mac
        self.mobility = mobility
        self.ttl = ttl
        self.withdraw = withdraw
        #: True for a periodic keepalive re-registration (no state
        #: change expected) — the map server's admission control sheds
        #: these first under overload
        self.refresh = refresh

    def __repr__(self):
        return "EidRecord(vn=%d, %s %s %s)" % (
            int(self.vn), self.eid,
            "withdrawn-from" if self.withdraw else "->", self.rloc,
        )


class MapRegister(ControlMessage):
    """Edge -> server: (VN, EID) is now at ``rloc``.

    ``group`` is the endpoint's GroupId learned at onboarding; the server
    stores it so Map-Replies can carry it (used by the ingress-enforcement
    ablation).  ``mobility`` marks re-registrations caused by roaming.

    ``registrar_rloc`` supports proxied registrations (fabric wireless):
    when a WLC registers a station on behalf of the AP's edge, ``rloc``
    is the edge but the register was *sent* by the registrar, which asks
    for a Map-Notify acknowledgement (the M-bit of RFC 6833) so it knows
    the location update completed.

    A batched register carries several :class:`EidRecord` in ``records``
    (the control-plane fast path): the server applies the whole batch
    atomically under one base service charge and returns one aggregated
    ack.  Single-record messages leave ``records`` as ``None`` and keep
    the flat attribute form.
    """

    __slots__ = ("vn", "eid", "rloc", "group", "mac", "mobility", "ttl",
                 "registrar_rloc", "records", "refresh")

    kind = "map-register"

    def __init__(self, vn=None, eid=None, rloc=None, group=None, mac=None,
                 mobility=False, ttl=None, registrar_rloc=None, records=None,
                 nonce=None, refresh=False):
        super().__init__(nonce)
        if records:
            records = tuple(records)
            first = records[0]
            vn, eid, rloc, group = first.vn, first.eid, first.rloc, first.group
            # A batch is a refresh only if every record is one — a
            # single roam or withdrawal makes the whole batch load-bearing.
            refresh = all(r.refresh for r in records)
        self.vn = vn
        self.eid = eid
        self.rloc = rloc
        self.group = group
        #: owner MAC for IP EIDs (feeds the routing server's ARP service)
        self.mac = mac
        self.mobility = mobility
        self.ttl = ttl
        #: where the Map-Notify ack goes; ``None`` = no ack requested
        self.registrar_rloc = registrar_rloc
        #: batched EID-records (``None`` = classic single-record message)
        self.records = records if records else None
        #: periodic keepalive re-registration (sheds first under overload)
        self.refresh = refresh

    @property
    def eid_records(self):
        """The message's records, batched or not, as :class:`EidRecord`."""
        if self.records is not None:
            return self.records
        return (EidRecord(self.vn, self.eid, self.rloc, group=self.group,
                          mac=self.mac, mobility=self.mobility, ttl=self.ttl,
                          refresh=self.refresh),)

    @property
    def record_count(self):
        return len(self.records) if self.records is not None else 1

    def __repr__(self):
        if self.records is not None:
            return "MapRegister(batch of %d, vn=%d)" % (
                len(self.records), int(self.vn)
            )
        return "MapRegister(vn=%d, %s -> %s%s)" % (
            int(self.vn), self.eid, self.rloc, ", roam" if self.mobility else ""
        )


class MapUnregister(ControlMessage):
    """Edge -> server: forget (VN, EID) if still pointing at ``rloc``."""

    __slots__ = ("vn", "eid", "rloc")

    kind = "map-unregister"

    def __init__(self, vn, eid, rloc, nonce=None):
        super().__init__(nonce)
        self.vn = vn
        self.eid = eid
        self.rloc = rloc


class MapRequest(ControlMessage):
    """Edge -> server: where is (VN, EID)?  Reply goes to ``reply_to``."""

    __slots__ = ("vn", "eid", "reply_to")

    kind = "map-request"

    def __init__(self, vn, eid, reply_to, nonce=None):
        super().__init__(nonce)
        self.vn = vn
        self.eid = eid
        self.reply_to = reply_to

    def __repr__(self):
        return "MapRequest(vn=%d, %s)" % (int(self.vn), self.eid)


class MapReply(ControlMessage):
    """Server -> edge: the mapping (or a negative reply).

    ``record`` is a :class:`repro.lisp.records.MappingRecord` or ``None``
    for a negative reply.  Negative replies carry their own (short) TTL so
    edges do not re-query every packet for unreachable destinations.
    """

    __slots__ = ("vn", "eid", "record", "negative_ttl")

    kind = "map-reply"

    def __init__(self, vn, eid, record, negative_ttl=15.0, nonce=None):
        super().__init__(nonce)
        self.vn = vn
        self.eid = eid
        self.record = record
        self.negative_ttl = negative_ttl

    @property
    def is_negative(self):
        return self.record is None


class MapNotify(ControlMessage):
    """Server -> old edge after a move (fig. 5, step 2).

    Instructs the old edge to pull the new location and redirect traffic
    for the endpoint.  Carries the new record so the pull costs no extra
    round trip in the common case (the paper's step 3 "pull the new
    location data" is the confirmation fetch).

    A batched notify (aggregated registration ack, or several endpoints
    that moved off the same edge in one batch) carries the full list in
    ``records``; receivers iterate :attr:`mapping_records`, which is a
    one-element tuple for the classic single-record form.
    """

    __slots__ = ("vn", "eid", "record", "records", "overloaded")

    kind = "map-notify"

    def __init__(self, vn=None, eid=None, record=None, records=None,
                 nonce=None):
        super().__init__(nonce)
        if records:
            records = tuple(records)
            first = records[0]
            vn, eid, record = first.vn, first.eid, first
        self.vn = vn
        self.eid = eid
        self.record = record
        #: batched records (``None`` = classic single-record message)
        self.records = records if records else None
        #: in-band backpressure bit: the server set this while its
        #: bounded queue was above the backpressure threshold, telling
        #: the registrar to widen batch windows / stretch refreshes
        self.overloaded = False

    @property
    def mapping_records(self):
        """Records carried, batched or not (each knows its vn/eid)."""
        if self.records is not None:
            return self.records
        return (self.record,)

    @property
    def record_count(self):
        return len(self.records) if self.records is not None else 1


class SolicitMapRequest(ControlMessage):
    """Old edge -> traffic source: your mapping for (VN, EID) is stale.

    The data-triggered control message of fig. 6: sent when traffic for a
    moved endpoint keeps arriving at its previous edge.  The receiver
    must re-resolve via the routing server (it must not trust the SMR's
    sender blindly — standard LISP anti-spoofing posture).
    """

    __slots__ = ("vn", "eid")

    kind = "smr"

    def __init__(self, vn, eid, nonce=None):
        super().__init__(nonce)
        self.vn = vn
        self.eid = eid


class AwayRegister(ControlMessage):
    """Foreign-site border -> home-site border: your endpoint roamed here.

    Sent over the transit when an endpoint whose EID belongs to the home
    site's aggregate attaches at another site.  The home border anchors
    the EID (registers it against itself in the home site's routing
    servers) and hairpins traffic to ``away_rloc`` — so the transit
    map-server itself never learns per-endpoint state.
    """

    __slots__ = ("vn", "eid", "away_rloc", "group", "mac", "initiated_at")

    kind = "away-register"

    def __init__(self, vn, eid, away_rloc, group=None, mac=None, nonce=None,
                 initiated_at=None):
        super().__init__(nonce)
        self.vn = vn
        self.eid = eid
        #: transit-side RLOC of the border now serving the endpoint
        self.away_rloc = away_rloc
        self.group = group
        #: owner MAC of the roamed endpoint: the home anchor re-registers
        #: the EID with it so the routing server's ARP service keeps
        #: answering while the endpoint is away
        self.mac = mac
        #: simulated time the roam event behind this announcement
        #: happened (set at announce time, *before* transit resolution
        #: delays the message).  The home border's ordering guard uses
        #: it to discard announcements that lost a race against a
        #: fresher home re-registration; ``None`` disables the guard.
        self.initiated_at = initiated_at

    def __repr__(self):
        return "AwayRegister(vn=%d, %s -> %s)" % (
            int(self.vn), self.eid, self.away_rloc
        )


class AwayUnregister(ControlMessage):
    """Foreign-site border -> home-site border: the endpoint left again.

    The home border drops its away-table entry and withdraws the anchor
    registration (guarded, so a racing home re-attach is never undone).
    """

    __slots__ = ("vn", "eid", "away_rloc", "initiated_at")

    kind = "away-unregister"

    def __init__(self, vn, eid, away_rloc, nonce=None, initiated_at=None):
        super().__init__(nonce)
        self.vn = vn
        self.eid = eid
        self.away_rloc = away_rloc
        #: see :class:`AwayRegister.initiated_at`
        self.initiated_at = initiated_at


class SubscribeRequest(ControlMessage):
    """Border -> server: push me every mapping change (lisp-pubsub)."""

    __slots__ = ("subscriber_rloc", "vn")

    kind = "subscribe"

    def __init__(self, subscriber_rloc, vn=None, nonce=None):
        super().__init__(nonce)
        self.subscriber_rloc = subscriber_rloc
        #: None = all VNs
        self.vn = vn


class PublishUpdate(ControlMessage):
    """Server -> subscriber: a mapping changed (or was withdrawn).

    ``record`` is ``None`` for withdrawals.
    """

    __slots__ = ("vn", "eid", "record")

    kind = "publish"

    def __init__(self, vn, eid, record, nonce=None):
        super().__init__(nonce)
        self.vn = vn
        self.eid = eid
        self.record = record


def control_packet(src_rloc, dst_rloc, message):
    """Wrap a control message in an underlay UDP packet.

    Batched messages are charged their real size — the base message plus
    one :data:`RECORD_SIZE` per extra record — so bandwidth accounting
    stays honest when the fast path aggregates registrations.
    """
    extra = getattr(message, "record_count", 1) - 1
    return Packet(
        headers=[IpHeader(src_rloc, dst_rloc), UdpHeader(LISP_PORT, LISP_PORT)],
        payload=message,
        size=CONTROL_MESSAGE_SIZE + RECORD_SIZE * extra,
    )
