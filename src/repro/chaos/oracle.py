"""Healing oracle: after faults heal, control-plane state must be true.

The guarantee the chaos suite enforces (and the property tests sweep):
once every fault in a schedule has healed and the simulation settled,
**no permanently stale mapping survives** — every routing server's
registration state equals the oracle state derivable from where
endpoints are *actually* attached right now.

Ground truth is the edges' VRF tables: an endpoint is where an edge's
VRF says it is, because that is the table the data plane delivers from.
The oracle therefore checks, per routing server:

* every VRF-attached endpoint has a host registration pointing at its
  serving edge's RLOC (recovered via retry/refresh after crashes);
* every host registration corresponds to a currently attached endpoint
  — nothing left behind by a dead edge, a crashed server's cold
  restart, or a partitioned site (swept by the registration TTL);
* in a federation, roamed-out endpoints additionally hold a home-site
  anchor registration pointing at a live border of their home site
  (the away-anchor adoption/refresh machinery).

Only IPv4 host records are checked: IPv4 is the family every device
registers and the one inter-site anchoring pins to; delegates and
aggregates are coarser than host routes by construction.
"""

from __future__ import annotations


def expected_registrations(fabric):
    """Oracle state of one fabric site: {(vn, eid) -> serving edge RLOC}."""
    expected = {}
    for edge in fabric.edges:
        for entry in edge.vrf.entries():
            expected[(int(entry.vn), entry.ip.to_prefix())] = edge.rloc
    return expected


def _check_server(label, server, expected, anchors=None, anchor_rlocs=()):
    """Violations of one routing server against the oracle state."""
    anchors = anchors or {}
    violations = []
    if server.crashed:
        violations.append("%s: still crashed" % label)
        return violations
    seen = set()
    seen_anchors = set()
    for record in list(server.database.records(family="ipv4")):
        if not record.eid.is_host:
            continue   # delegates / aggregates are configuration state
        key = (int(record.vn), record.eid)
        want = expected.get(key)
        if want is not None:
            if record.rloc == want:
                seen.add(key)
            else:
                violations.append(
                    "%s: %s/vn%d -> %s, expected %s"
                    % (label, record.eid, key[0], record.rloc, want)
                )
        elif key in anchors:
            if record.rloc in anchor_rlocs:
                seen_anchors.add(key)
            else:
                violations.append(
                    "%s: anchor %s/vn%d at %s, not a live home border"
                    % (label, record.eid, key[0], record.rloc)
                )
        else:
            violations.append(
                "%s: stale mapping %s/vn%d -> %s (endpoint not attached)"
                % (label, record.eid, key[0], record.rloc)
            )
    for key in sorted(expected, key=str):
        if key not in seen:
            violations.append(
                "%s: missing registration for %s/vn%d"
                % (label, key[1], key[0])
            )
    for key in sorted(anchors, key=str):
        if key not in seen_anchors:
            violations.append(
                "%s: missing home anchor for %s/vn%d"
                % (label, key[1], key[0])
            )
    return violations


def _active_overload_feeds(label, fabric):
    """An unrelieved request storm is itself a violation.

    Shedding under overload may *delay* state convergence but never
    corrupt it — so the healed-state contract is only claimable once
    the storm has been relieved.  Flagging live feeds here makes
    ``assert_healed`` reject schedules that never heal an ``overload``
    fault instead of passing vacuously on whatever state survived.
    """
    return [
        "%s: overload feed still active on server%d" % (label, index)
        for index in sorted(getattr(fabric, "_overload_feeds", {}))
    ]


def stale_mappings(net):
    """All oracle violations of a fabric or federation (empty == healed)."""
    if hasattr(net, "sites"):
        return _stale_multisite(net)
    violations = _active_overload_feeds("fabric", net)
    expected = expected_registrations(net)
    for index, server in enumerate(net.routing_servers):
        violations.extend(
            _check_server("server%d" % index, server, expected)
        )
    return violations


def _stale_multisite(net):
    violations = []
    away_by_home = {}
    for identity in sorted(net._foreign_site):
        endpoint = net._endpoints[identity]
        if endpoint.ip is None:
            continue
        home = net.home_site_index(endpoint)
        key = (int(endpoint.vn), endpoint.ip.to_prefix())
        away_by_home.setdefault(home, {})[key] = identity
    for index, site in enumerate(net.sites):
        violations.extend(_active_overload_feeds("site%d" % index, site))
        expected = expected_registrations(site)
        anchors = away_by_home.get(index, {})
        anchor_rlocs = {
            border.rloc for border in site.borders if not border.failed
        }
        for s_index, server in enumerate(site.routing_servers):
            violations.extend(_check_server(
                "site%d.server%d" % (index, s_index), server, expected,
                anchors=anchors, anchor_rlocs=anchor_rlocs,
            ))
    return violations


def assert_healed(net):
    """Raise ``AssertionError`` listing every violation (tests' entry)."""
    violations = stale_mappings(net)
    if violations:
        raise AssertionError(
            "healing oracle failed (%d violations):\n  %s"
            % (len(violations), "\n  ".join(violations))
        )
