"""Probe monitor: measuring blackholes the way operators do.

Counters tell you a packet was dropped; they cannot tell you for *how
long* a path stayed dark.  The :class:`ProbeMonitor` measures that the
way deployed fabrics do (IP SLA / continuous ping): a fixed set of
endpoint pairs exchanges a small probe every ``interval_s``, and every
probe that fails to arrive charges one interval of **blackhole time**
to its pair.

Two derived metrics feed the chaos benchmarks:

* ``blackhole_s`` — total blackhole-seconds across all pairs: the sum
  over lost probes of the probe interval.  With N pairs dark for T
  seconds this reads ``N * T`` (pair-seconds of outage), matching how
  the paper's availability numbers aggregate over flows.
* ``reconvergence_s`` — per fault mark (the engine calls :meth:`mark`
  at each injection), the delay until the first probe *round* in which
  every pair delivered again.  This is fault-to-repair as the data
  plane experiences it, not as the control plane claims it.

Determinism: probes ride the simulated data plane (``net.send``), all
bookkeeping is keyed by monotonic probe ids, and round resolution
iterates ids in sorted order — two runs of the same seed produce the
same blackhole ledger bit-for-bit.
"""

from __future__ import annotations

from collections import deque

#: payload tag identifying monitor probes inside endpoint sinks.
PROBE_TAG = "chaos-probe"


class ProbeMonitor:
    """Continuous pair-wise probing over a fabric's data plane."""

    def __init__(self, net, pairs, interval_s=0.05, size=120):
        self.net = net
        self.sim = net.sim
        self.pairs = list(pairs)
        self.interval_s = float(interval_s)
        self.size = size
        self.sent = 0
        self.received = 0
        self.lost = 0
        self.blackhole_s = 0.0
        self.blackhole_by_pair = [0.0] * len(self.pairs)
        #: resolved fault-to-repair delays, in mark order
        self.reconvergence_s = []
        self._seq = 0
        self._probe_pair = {}    # probe id -> pair index
        self._probe_round = {}   # probe id -> its round record
        self._rounds = deque()   # {"t":, "pending": set, "lost": int}
        self._marks = deque()    # unresolved fault times
        self._running = False
        self._hooked = set()
        for _src, dst in self.pairs:
            self._instrument(dst)

    # ------------------------------------------------------------------ wiring
    def _instrument(self, dst):
        """Chain a probe interceptor in front of the endpoint's sink."""
        if dst.identity in self._hooked:
            return
        self._hooked.add(dst.identity)
        previous = dst.sink

        def probe_sink(endpoint, packet, now, _prev=previous):
            payload = getattr(packet, "payload", None)
            if (isinstance(payload, tuple) and len(payload) == 2
                    and payload[0] == PROBE_TAG):
                self._on_delivery(payload[1])
                return
            if _prev is not None:
                _prev(endpoint, packet, now)

        dst.sink = probe_sink

    # ------------------------------------------------------------------ lifecycle
    def start(self):
        if self._running:
            return
        self._running = True
        self._tick()

    def stop(self):
        self._running = False

    def mark(self, at=None):
        """Note a fault time; the next clean probe round resolves it."""
        self._marks.append(self.sim.now if at is None else at)

    # ------------------------------------------------------------------ probing
    def _tick(self):
        if not self._running:
            return
        now = self.sim.now
        # Probes from two rounds ago have had a full round-trip budget;
        # anything still outstanding from them is lost.
        self._resolve(now - 2.0 * self.interval_s)
        round_info = {"t": now, "pending": set(), "lost": 0}
        for index, (src, dst) in enumerate(self.pairs):
            if src.ip is None or dst.ip is None:
                continue
            probe_id = self._seq
            self._seq += 1
            self._probe_pair[probe_id] = index
            self._probe_round[probe_id] = round_info
            round_info["pending"].add(probe_id)
            self.sent += 1
            self.net.send(src, dst.ip, size=self.size,
                          payload=(PROBE_TAG, probe_id))
        if round_info["pending"]:
            self._rounds.append(round_info)
        self.sim.schedule_daemon(self.interval_s, self._tick)

    def _on_delivery(self, probe_id):
        index = self._probe_pair.pop(probe_id, None)
        if index is None:
            # Late arrival of a probe already written off as lost: the
            # blackhole charge stands (the path *was* dark for the
            # measurement window).
            return
        self.received += 1
        round_info = self._probe_round.pop(probe_id, None)
        if round_info is not None:
            round_info["pending"].discard(probe_id)

    def _resolve(self, cutoff):
        """Close out probe rounds sent at or before ``cutoff``."""
        while self._rounds and self._rounds[0]["t"] <= cutoff + 1e-12:
            round_info = self._rounds.popleft()
            for probe_id in sorted(round_info["pending"]):
                index = self._probe_pair.pop(probe_id, None)
                self._probe_round.pop(probe_id, None)
                if index is None:
                    continue
                self.lost += 1
                round_info["lost"] += 1
                self.blackhole_s += self.interval_s
                self.blackhole_by_pair[index] += self.interval_s
            if round_info["lost"] == 0:
                while self._marks and round_info["t"] >= self._marks[0]:
                    self.reconvergence_s.append(
                        round_info["t"] - self._marks.popleft()
                    )

    def flush(self):
        """Resolve every outstanding round (call after the final settle)."""
        self._resolve(float("inf"))

    # ------------------------------------------------------------------ reporting
    def summary(self):
        out = {
            "probes_sent": self.sent,
            "probes_received": self.received,
            "probes_lost": self.lost,
            "blackhole_s": round(self.blackhole_s, 9),
            "reconvergence_count": len(self.reconvergence_s),
        }
        if self.reconvergence_s:
            ordered = sorted(self.reconvergence_s)
            out["reconvergence_max_s"] = round(ordered[-1], 9)
            out["reconvergence_p50_s"] = round(
                ordered[len(ordered) // 2], 9)
        return out

    def __repr__(self):
        return "ProbeMonitor(pairs=%d, lost=%d, blackhole=%.3gs)" % (
            len(self.pairs), self.lost, self.blackhole_s
        )
