"""Deterministic fault schedules: what breaks, when, and when it heals.

A :class:`ChaosSchedule` is a plain value object — an ordered list of
:class:`ChaosFault` entries — with two properties the chaos suite leans
on:

* **Replayable.**  A schedule says nothing about *how* a fault is
  applied; the :class:`~repro.chaos.engine.ChaosEngine` maps each fault
  kind onto the target network's chaos verbs at arm time.  The same
  schedule object drives a single-site fabric or a multi-site
  federation, and running it twice against the same seed produces
  bit-identical simulations.
* **Digest-comparable.**  :meth:`ChaosSchedule.digest` hashes the
  canonical JSON form, so CI lanes and property tests can assert that
  two processes executed *the same* faults without shipping the
  schedule between them.

Schedules are authored by hand (regression scenarios want exact
timings) or generated from a :class:`~repro.sim.rng.SeededRng` via
:meth:`ChaosSchedule.generate` (property tests want coverage of the
fault-combination space).
"""

from __future__ import annotations

import hashlib
import json

from repro.core.errors import ConfigurationError

#: fault kind -> (inject verb, heal verb) resolved on the target network.
#: The first four exist on :class:`~repro.fabric.network.FabricNetwork`;
#: ``site_partition`` and ``transit_border`` only on
#: :class:`~repro.multisite.network.MultiSiteNetwork`; ``overload``
#: (a synthetic request storm) on both.
KIND_VERBS = {
    "link": ("fail_link", "heal_link"),
    "node": ("fail_node", "heal_node"),
    "routing_server": ("crash_routing_server", "restart_routing_server"),
    "border": ("fail_border", "recover_border"),
    "site_partition": ("partition_site", "heal_site"),
    "transit_border": ("fail_transit_border", "heal_transit_border"),
    "overload": ("overload_server", "relieve_server"),
}


class ChaosFault:
    """One scheduled fault: inject at ``at``, heal ``heal_after_s`` later.

    ``at`` is relative to engine arm time.  ``heal_after_s=None`` means
    the fault is never healed by the engine (the scenario heals it
    explicitly, or wants to observe the degraded steady state).
    """

    __slots__ = ("at", "kind", "args", "heal_after_s")

    def __init__(self, at, kind, args=(), heal_after_s=None):
        if kind not in KIND_VERBS:
            raise ConfigurationError(
                "unknown fault kind %r (have: %s)"
                % (kind, ", ".join(sorted(KIND_VERBS)))
            )
        if at < 0:
            raise ConfigurationError("fault time must be >= 0, got %r" % (at,))
        if heal_after_s is not None and heal_after_s <= 0:
            raise ConfigurationError(
                "heal_after_s must be positive, got %r" % (heal_after_s,)
            )
        self.at = float(at)
        self.kind = kind
        self.args = tuple(args)
        self.heal_after_s = None if heal_after_s is None else float(heal_after_s)

    def as_dict(self):
        return {
            "at": self.at,
            "kind": self.kind,
            "args": [str(arg) if not isinstance(arg, (int, float)) else arg
                     for arg in self.args],
            "heal_after_s": self.heal_after_s,
        }

    def __repr__(self):
        heal = ("" if self.heal_after_s is None
                else ", heal_after=%gs" % self.heal_after_s)
        return "ChaosFault(t=%g, %s%r%s)" % (self.at, self.kind,
                                             self.args, heal)


class ChaosSchedule:
    """An ordered, hashable plan of faults."""

    def __init__(self, faults=()):
        self.faults = tuple(sorted(faults, key=lambda f: f.at))

    def __len__(self):
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    @property
    def duration_s(self):
        """Time of the last scheduled action (inject or heal)."""
        end = 0.0
        for fault in self.faults:
            end = max(end, fault.at + (fault.heal_after_s or 0.0))
        return end

    def as_dict(self):
        return {"faults": [fault.as_dict() for fault in self.faults]}

    def digest(self):
        """Stable hex digest of the canonical JSON form."""
        payload = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @classmethod
    def generate(cls, rng, menu, count=4, window_s=10.0,
                 heal_after_range=(0.5, 2.0), spacing_s=0.0):
        """Draw ``count`` healed faults from ``menu`` inside ``window_s``.

        ``menu`` is a list of ``(kind, args)`` candidates — the fault
        population of the target deployment (its links, its servers, its
        borders).  Every generated fault heals, so post-schedule
        invariants ("no permanently stale mapping after full healing")
        are well-defined for any draw.  ``spacing_s`` pads fault times
        apart so injections never collide on the same event timestamp.
        """
        if not menu:
            raise ConfigurationError("fault menu is empty")
        faults = []
        for index in range(count):
            kind, args = menu[int(rng.uniform(0, len(menu))) % len(menu)]
            at = rng.uniform(0.0, window_s) + index * spacing_s
            heal_after = rng.uniform(*heal_after_range)
            faults.append(ChaosFault(at, kind, args, heal_after_s=heal_after))
        return cls(faults)

    def __repr__(self):
        return "ChaosSchedule(%d faults, %.3gs)" % (
            len(self.faults), self.duration_s
        )
