"""Chaos suite: deterministic fault injection + healing guarantees.

The robustness counterpart of the repo's performance story.  The paper's
deployments live with failing links, crashing map-servers and dying
borders; this package makes those events first-class, *replayable*
simulation inputs and pins down what "the fabric healed" means:

* :mod:`repro.chaos.schedule` — :class:`ChaosFault` /
  :class:`ChaosSchedule`: seeded, digest-comparable fault plans;
* :mod:`repro.chaos.engine` — :class:`ChaosEngine`: replays a schedule
  against a :class:`~repro.fabric.network.FabricNetwork` or
  :class:`~repro.multisite.network.MultiSiteNetwork` via their chaos
  verbs, keeping a JSON-able trace;
* :mod:`repro.chaos.probes` — :class:`ProbeMonitor`: continuous
  pair-wise probing that turns faults into blackhole-seconds and
  fault-to-repair reconvergence delays;
* :mod:`repro.chaos.oracle` — the no-stale-mapping healing oracle
  (:func:`stale_mappings` / :func:`assert_healed`).

The recovery machinery the schedules exercise (registration retry and
refresh, server soft-state sweeps, border failover and away-anchor
adoption) lives with the devices it protects; every knob defaults off
so the performance baselines stay bit-identical.
"""

from repro.chaos.engine import ChaosEngine
from repro.chaos.oracle import assert_healed, expected_registrations, stale_mappings
from repro.chaos.probes import PROBE_TAG, ProbeMonitor
from repro.chaos.schedule import KIND_VERBS, ChaosFault, ChaosSchedule

__all__ = [
    "ChaosEngine",
    "ChaosFault",
    "ChaosSchedule",
    "KIND_VERBS",
    "PROBE_TAG",
    "ProbeMonitor",
    "assert_healed",
    "expected_registrations",
    "stale_mappings",
]
