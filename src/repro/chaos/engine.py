"""ChaosEngine: replaying a fault schedule against a live deployment.

The engine is deliberately thin: it owns *when*, the network facades
own *how*.  At :meth:`arm` time every fault in the schedule is turned
into simulator events that call the target network's chaos verbs
(``fail_link`` / ``crash_routing_server`` / ``partition_site`` / ...,
see :data:`~repro.chaos.schedule.KIND_VERBS`), and the paired heal
verbs ``heal_after_s`` later.  Everything the engine does is recorded
in a JSON-able :attr:`trace` — the artifact the CI chaos lane uploads,
and the thing you diff when two seeds behave differently.

Composition with the rest of the suite:

* hand the engine a :class:`~repro.chaos.probes.ProbeMonitor` and it
  marks every injection on it, turning probe rounds into
  fault-to-repair reconvergence delays;
* after the schedule drains and the simulation settles, run
  :func:`~repro.chaos.oracle.assert_healed` — the engine guarantees a
  fully-healed schedule leaves no verb un-reversed, the oracle checks
  the control plane actually converged back to truth.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.chaos.schedule import KIND_VERBS


class ChaosEngine:
    """Applies a :class:`~repro.chaos.schedule.ChaosSchedule` to a net."""

    def __init__(self, net, schedule, monitor=None):
        self.net = net
        self.schedule = schedule
        self.monitor = monitor
        #: [{"t", "action", "kind", "args"}] in execution order
        self.trace = []
        self.faults_injected = 0
        self.faults_healed = 0
        self._armed = False
        for fault in schedule:
            inject_verb, heal_verb = KIND_VERBS[fault.kind]
            for verb in (inject_verb, heal_verb):
                if not hasattr(net, verb):
                    raise ConfigurationError(
                        "%s cannot run %r faults: no %s()"
                        % (type(net).__name__, fault.kind, verb)
                    )

    def arm(self):
        """Schedule every fault relative to the current sim time."""
        if self._armed:
            raise ConfigurationError("chaos engine already armed")
        self._armed = True
        for fault in self.schedule:
            self.net.sim.schedule(fault.at, self._inject, fault)

    # ------------------------------------------------------------------ execution
    def _record(self, action, fault):
        self.trace.append({
            "t": round(self.net.sim.now, 9),
            "action": action,
            "kind": fault.kind,
            "args": fault.as_dict()["args"],
        })

    def _inject(self, fault):
        self._record("inject", fault)
        getattr(self.net, KIND_VERBS[fault.kind][0])(*fault.args)
        self.faults_injected += 1
        if self.monitor is not None:
            self.monitor.mark()
        if fault.heal_after_s is not None:
            self.net.sim.schedule(fault.heal_after_s, self._heal, fault)

    def _heal(self, fault):
        self._record("heal", fault)
        getattr(self.net, KIND_VERBS[fault.kind][1])(*fault.args)
        self.faults_healed += 1

    # ------------------------------------------------------------------ reporting
    def summary(self):
        return {
            "faults_injected": self.faults_injected,
            "faults_healed": self.faults_healed,
            "schedule_digest": self.schedule.digest(),
            "trace_events": len(self.trace),
        }

    def __repr__(self):
        return "ChaosEngine(faults=%d, injected=%d, healed=%d)" % (
            len(self.schedule), self.faults_injected, self.faults_healed
        )
