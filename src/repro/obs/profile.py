"""Event-loop profiling: per-event-type counts, sim-cost, wall-clock.

``Simulator.run(profile=EventProfile())`` swaps the hot loop for a
timed variant that clocks every callback and records how far it moved
the simulated clock.  The breakdown answers the question benches keep
re-deriving by hand: *which* event type is the run spending its wall
time in — WLC CPU completions, routing-server dequeues, packet
deliveries — and what each costs in simulated seconds.

Keyed by callback ``__qualname__`` so bound methods of different
instances aggregate into one row (``FabricWlc._process_association``),
which is the granularity a bench breakdown wants.
"""

from __future__ import annotations

import time


class EventProfile:
    """Accumulator handed to :meth:`Simulator.run`.

    ``clock`` is injectable for deterministic tests (defaults to
    :func:`time.perf_counter`).
    """

    def __init__(self, clock=time.perf_counter):
        self.clock = clock
        self.by_type = {}     # qualname -> [count, wall_s, sim_advance_s]
        self.events = 0
        self.wall_s = 0.0
        self.sim_advance_s = 0.0

    @staticmethod
    def _key(callback):
        key = getattr(callback, "__qualname__", None)
        if key is None:
            key = type(callback).__name__
        return key

    def record(self, callback, wall_s, advance_s):
        key = self._key(callback)
        row = self.by_type.get(key)
        if row is None:
            row = self.by_type[key] = [0, 0.0, 0.0]
        row[0] += 1
        row[1] += wall_s
        row[2] += advance_s
        self.events += 1
        self.wall_s += wall_s
        self.sim_advance_s += advance_s

    # ------------------------------------------------------------------ reporting
    def summary(self, top=None):
        """Rows sorted by wall-clock cost, heaviest first."""
        rows = [
            {
                "event": key,
                "count": count,
                "wall_s": wall,
                "sim_advance_s": advance,
                "wall_share": (wall / self.wall_s) if self.wall_s else 0.0,
            }
            for key, (count, wall, advance) in self.by_type.items()
        ]
        rows.sort(key=lambda row: (-row["wall_s"], row["event"]))
        if top is not None:
            rows = rows[:top]
        return rows

    def as_dict(self, top=None):
        return {
            "events": self.events,
            "wall_s": self.wall_s,
            "sim_advance_s": self.sim_advance_s,
            "by_type": self.summary(top=top),
        }

    def report(self, top=20):
        """Human-readable table (the ``obs_report`` text view)."""
        lines = [
            "event profile: %d events, %.3fs wall, %.3fs sim"
            % (self.events, self.wall_s, self.sim_advance_s),
            "%-52s %10s %12s %12s %7s"
            % ("event", "count", "wall_s", "sim_s", "wall%"),
        ]
        for row in self.summary(top=top):
            lines.append(
                "%-52s %10d %12.6f %12.6f %6.1f%%"
                % (
                    row["event"][:52],
                    row["count"],
                    row["wall_s"],
                    row["sim_advance_s"],
                    100.0 * row["wall_share"],
                )
            )
        return "\n".join(lines)

    def __repr__(self):
        return "EventProfile(events=%d, types=%d, wall=%.3fs)" % (
            self.events, len(self.by_type), self.wall_s
        )
