"""Simulation-time distributed tracing: spans over the simulated clock.

The control plane of a single roam touches half a dozen devices — AP,
WLC, policy server, routing servers, borders, foreign-site WLC — and
every one of the races PR 3-5 fixed (stale roam-chain relays, the
AwayRegister ordering guard, cancelled withdrawals) was a *causal*
story: which message was queued when, behind what backlog, superseding
which older attempt.  Aggregate counters cannot tell that story; spans
can.

Design rules (mirroring the fast-path knobs):

* **zero-cost-when-off.**  A disabled tracer's :meth:`Tracer.span`
  returns the module-level :data:`NULL_SPAN` singleton before touching
  anything else; every span method on it is a no-op.  Devices therefore
  instrument unconditionally and never branch on a flag themselves.
* **sim-time, not wall-time.**  Spans are stamped with ``sim.now`` so a
  trace is bit-reproducible for a fixed seed, and queue-wait vs service
  time can be read straight off the span attributes.
* **deterministic ids.**  Trace and span ids come from the tracer's own
  monotonic counters (not :func:`repro.lisp.messages.next_nonce`, whose
  consumption would perturb message nonces and break the obs-off
  determinism contract).

Export formats: JSON-lines (one span per line — the schema
:mod:`repro.tools.check_trace` validates) and Chrome ``trace_event``
JSON, loadable in Perfetto / ``chrome://tracing`` with one thread lane
per device.
"""

from __future__ import annotations

import itertools
import json


def jsonable(value):
    """Coerce a span/metric attribute to a JSON-serializable value.

    Simulation objects (EndpointId, addresses, prefixes) stringify;
    plain scalars pass through untouched.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class _NullSpan:
    """The do-nothing span a disabled tracer hands out (one singleton).

    ``ctx`` is ``None`` so tagging a message with a null span's context
    (``message.trace_ctx = span.ctx``) writes the same default the
    message was constructed with — no allocation, no branch needed at
    the call site.
    """

    __slots__ = ()

    ctx = None
    finished = True

    def set(self, **attrs):
        return self

    def finish(self, **attrs):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def __repr__(self):
        return "NullSpan()"


#: The singleton every disabled tracer returns (asserted identical in tests).
NULL_SPAN = _NullSpan()


class Span:
    """One timed operation on one device, causally linked to a trace.

    ``ctx`` — the ``(trace_id, span_id)`` pair — is what propagates:
    stashed on control messages (``message.trace_ctx``) and endpoints
    (``endpoint.trace_ctx``) so work queued across simulation events can
    parent itself correctly.
    """

    __slots__ = ("_tracer", "trace_id", "span_id", "parent_id", "name",
                 "device", "start_s", "end_s", "attrs")

    def __init__(self, tracer, trace_id, span_id, parent_id, name, device,
                 start_s, attrs):
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.device = device
        self.start_s = start_s
        self.end_s = None
        self.attrs = attrs

    @property
    def ctx(self):
        """The propagatable trace context: ``(trace_id, span_id)``."""
        return (self.trace_id, self.span_id)

    @property
    def finished(self):
        return self.end_s is not None

    def set(self, **attrs):
        """Attach/overwrite span attributes."""
        self.attrs.update(attrs)
        return self

    def finish(self, **attrs):
        """Stamp the end time at ``sim.now`` (idempotent: first wins)."""
        if attrs:
            self.attrs.update(attrs)
        if self.end_s is None:
            sim = self._tracer.sim
            self.end_s = sim.now if sim is not None else self.start_s
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.finish()
        return False

    def __repr__(self):
        return "Span(%s on %s, trace=%d, [%g, %s])" % (
            self.name, self.device, self.trace_id, self.start_s,
            "open" if self.end_s is None else "%g" % self.end_s,
        )


class Tracer:
    """Span factory + in-memory store + exporters.

    Parameters
    ----------
    sim:
        The simulation kernel timestamps come from (``None`` only for
        the shared disabled singleton).
    enabled:
        The flag every fast-path check reads.  When ``False``,
        :meth:`span` returns :data:`NULL_SPAN` and nothing is stored.
    max_spans:
        Memory bound for long runs; spans past the cap are dropped (and
        counted in :attr:`dropped`) rather than evicting older ones, so
        early causality is never silently rewritten.
    """

    def __init__(self, sim=None, enabled=True, max_spans=None):
        self.sim = sim
        self.enabled = enabled
        self.max_spans = max_spans
        self.spans = []
        self.dropped = 0
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self._devices = {}    # id(obj) -> registered display name

    # ------------------------------------------------------------------ naming
    def register_device(self, obj, name):
        """Give a device object a stable display name (e.g. ``site0.wlc``).

        Device objects rarely know their own site; the wiring layer
        (:mod:`repro.obs.instrument`) registers fabric-scoped names so
        spans from two sites' WLCs are distinguishable.  No-op when
        disabled so the shared :data:`NULL_TRACER` never accumulates.
        """
        if self.enabled:
            self._devices[id(obj)] = str(name)

    def device_name(self, device):
        """Resolve a span's ``device`` argument to a display string."""
        if device is None:
            return "-"
        if isinstance(device, str):
            return device
        name = self._devices.get(id(device))
        if name is not None:
            return name
        fallback = getattr(device, "name", None)
        if fallback:
            return str(fallback)
        rloc = getattr(device, "rloc", None)
        if rloc is not None:
            return "%s@%s" % (type(device).__name__, rloc)
        return type(device).__name__

    # ------------------------------------------------------------------ spans
    def span(self, name, device=None, parent=None, **attrs):
        """Open a span; returns :data:`NULL_SPAN` when disabled.

        ``parent`` may be another :class:`Span`, a propagated
        ``(trace_id, span_id)`` context tuple, or ``None`` (roots a new
        trace).  A ``None`` context read off an untagged message also
        roots a new trace, so partial instrumentation degrades to
        smaller traces rather than errors.
        """
        if not self.enabled:
            return NULL_SPAN
        if self.max_spans is not None and len(self.spans) >= self.max_spans:
            self.dropped += 1
            return NULL_SPAN
        ctx = parent.ctx if isinstance(parent, Span) else parent
        if ctx is None:
            trace_id = next(self._trace_ids)
            parent_id = None
        else:
            trace_id, parent_id = ctx
        span = Span(self, trace_id, next(self._span_ids), parent_id,
                    str(name), self.device_name(device),
                    self.sim.now if self.sim is not None else 0.0, attrs)
        self.spans.append(span)
        return span

    @staticmethod
    def parent_of(message):
        """The trace context a message carries (``None``-safe)."""
        return getattr(message, "trace_ctx", None)

    def traces(self):
        """Spans grouped by trace id (insertion order preserved)."""
        grouped = {}
        for span in self.spans:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    # ------------------------------------------------------------------ export
    def to_dicts(self):
        """All spans as JSON-safe dicts (the JSONL schema).

        Open spans export with ``end_s == start_s`` and an
        ``unfinished`` marker: a span can legitimately never finish
        (e.g. a registration superseded mid-flight) and the export must
        not invent a duration for it.
        """
        rows = []
        for span in self.spans:
            end_s = span.end_s
            attrs = {key: jsonable(value)
                     for key, value in span.attrs.items()}
            if end_s is None:
                end_s = span.start_s
                attrs["unfinished"] = True
            rows.append({
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "device": span.device,
                "start_s": span.start_s,
                "end_s": end_s,
                "attrs": attrs,
            })
        return rows

    def export_jsonl(self, path):
        """Write one span per line; returns the number of spans written."""
        rows = self.to_dicts()
        with open(path, "w") as handle:
            for row in rows:
                handle.write(json.dumps(row, sort_keys=True))
                handle.write("\n")
        return len(rows)

    def chrome_events(self):
        """The spans as a Chrome ``trace_event`` object (Perfetto-loadable).

        Each device gets its own thread lane (``tid`` plus a
        ``thread_name`` metadata event); spans become complete (``"X"``)
        events with microsecond timestamps, which is the unit the format
        specifies.
        """
        events = []
        tids = {}
        for row in self.to_dicts():
            tid = tids.get(row["device"])
            if tid is None:
                tid = tids[row["device"]] = len(tids) + 1
                events.append({
                    "ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
                    "args": {"name": row["device"]},
                })
            args = dict(row["attrs"])
            args["trace_id"] = row["trace_id"]
            args["span_id"] = row["span_id"]
            if row["parent_id"] is not None:
                args["parent_id"] = row["parent_id"]
            events.append({
                "ph": "X",
                "name": row["name"],
                "cat": "sim",
                "pid": 1,
                "tid": tid,
                "ts": row["start_s"] * 1e6,
                "dur": (row["end_s"] - row["start_s"]) * 1e6,
                "args": args,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome(self, path):
        """Write the Chrome ``trace_event`` JSON file."""
        payload = self.chrome_events()
        with open(path, "w") as handle:
            json.dump(payload, handle)
        return len(payload["traceEvents"])

    def __repr__(self):
        state = "on" if self.enabled else "off"
        return "Tracer(%s, spans=%d)" % (state, len(self.spans))


#: Shared disabled tracer — the default on every Simulator, so device
#: code can always call ``self.sim.tracer.span(...)`` unconditionally.
NULL_TRACER = Tracer(sim=None, enabled=False)
