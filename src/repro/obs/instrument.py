"""Wiring: attach an Observability bundle to a built topology.

This module is deliberately duck-typed — it dispatches on attribute
shape (``site_wireless``, ``wlc``+``aps``, ``sites``+``transit``,
``edges``+``borders``) instead of importing the fabric / wireless /
multisite classes.  ``repro.sim.simulator`` imports :mod:`repro.obs`,
so importing device modules from here would be circular; shape checks
also mean any workload object exposing ``.wireless`` or ``.net`` can be
instrumented without this module knowing about it.

What wiring does per device:

* registers a site-scoped display name on the tracer
  (``site0.wlc``, ``site1.edge1``, ...) — WLC and server RLOCs are
  identical across sites, so names are the only unambiguous identity;
* enrolls the device's ``Counters``/stats block in the registry;
* adds gauges for state blocks with no counters (map-cache occupancy,
  megaflow entries, routing-server queue depth, batch backlog);
* arms the opt-in histogram hooks (``SerialQueue.wait_hist``,
  ``Batcher.flush_hist``) that are ``None`` — and therefore free — when
  observability is off.
"""

from __future__ import annotations

from repro.obs.metrics import COUNT_BOUNDS


def _map_cache_gauges(obs, cache, name):
    obs.metrics.gauge(name + ".occupancy", lambda: cache.occupancy())
    obs.metrics.gauge(name + ".hits", lambda: cache.hits)
    obs.metrics.gauge(name + ".misses", lambda: cache.misses)


def _megaflow_gauges(obs, device, name):
    megaflow = device.megaflow
    if megaflow is None:
        return
    obs.metrics.gauge(name + ".megaflow", megaflow.stats_dict)


def _edge(obs, edge, name):
    obs.tracer.register_device(edge, name)
    obs.metrics.enroll(name, edge.counters)
    _map_cache_gauges(obs, edge.map_cache, name + ".map_cache")
    _megaflow_gauges(obs, edge, name)


def _border(obs, border, name):
    obs.tracer.register_device(border, name)
    obs.metrics.enroll(name, border.counters)
    _megaflow_gauges(obs, border, name)
    if border.transit_cache is not None:
        _map_cache_gauges(obs, border.transit_cache, name + ".transit_cache")


def _routing_server(obs, server, name):
    obs.tracer.register_device(server, name)
    obs.metrics.enroll(name, server.stats)
    obs.metrics.gauge(name + ".queue_depth", lambda: server._queue_depth)
    obs.metrics.gauge(name + ".route_count", lambda: server.route_count)


def _policy_server(obs, server, name):
    obs.tracer.register_device(server, name)
    server._cpu.wait_hist = obs.metrics.histogram(name + ".cpu_wait_s")
    obs.metrics.gauge(name + ".cpu_backlog_s", lambda: server._cpu.backlog_s)
    obs.metrics.gauge(name + ".auth_cache_hits",
                      lambda: server.auth_cache_hits)
    obs.metrics.gauge(name + ".auth_cache_misses",
                      lambda: server.auth_cache_misses)


def _site_net(obs, net, prefix):
    """One FabricNetwork: edges, borders, routing servers, policy."""
    for edge in net.edges:
        _edge(obs, edge, prefix + edge.name)
    for border in net.borders:
        _border(obs, border, prefix + border.name)
    for index, server in enumerate(net.routing_servers):
        _routing_server(obs, server, "%srouting-server-%d" % (prefix, index))
    _policy_server(obs, net.policy_server, prefix + "policy-server")


def _wireless_fabric(obs, wireless, prefix):
    """One WirelessFabric (WLC + APs) plus its underlying site net."""
    wlc = wireless.wlc
    name = prefix + "wlc"
    obs.tracer.register_device(wlc, name)
    obs.metrics.enroll(name, wlc.stats)
    wlc._cpu.wait_hist = obs.metrics.histogram(name + ".cpu_wait_s")
    hist = obs.metrics.histogram(name + ".register_batch", COUNT_BOUNDS)
    wlc.batch_flush_hist = hist
    for batcher in wlc._batchers.values():
        batcher.flush_hist = hist
    obs.metrics.gauge(
        name + ".batch_backlog",
        lambda: sum(b.pending for b in wlc._batchers.values()),
    )
    for ap in wireless.aps:
        obs.tracer.register_device(ap, prefix + ap.name)
        obs.metrics.enroll(prefix + ap.name, ap.counters)
    _site_net(obs, wireless.net, prefix)


def _transit(obs, transit):
    obs.tracer.register_device(transit, "transit")
    obs.metrics.enroll("transit", transit.stats)
    obs.metrics.gauge("transit.queue_depth", lambda: transit._queue_depth)
    obs.metrics.gauge("transit.aggregates", lambda: transit.aggregate_count)


def instrument(obs, target):
    """Wire a topology (or workload holding one) into an obs bundle.

    Dispatches on shape; returns ``obs`` for chaining.  Unknown shapes
    raise so a typo'd target fails loudly instead of silently exporting
    an empty registry.
    """
    if hasattr(target, "site_wireless"):          # MultiSiteWireless
        for index, wireless in enumerate(target.site_wireless):
            _wireless_fabric(obs, wireless, "site%d." % index)
        _transit(obs, target.net.transit)
    elif hasattr(target, "wlc") and hasattr(target, "aps"):
        _wireless_fabric(obs, target, "")         # WirelessFabric
    elif hasattr(target, "sites") and hasattr(target, "transit"):
        for index, site in enumerate(target.sites):   # MultiSiteNetwork
            _site_net(obs, site, "site%d." % index)
        _transit(obs, target.transit)
    elif hasattr(target, "edges") and hasattr(target, "borders"):
        _site_net(obs, target, "")                # FabricNetwork
    elif hasattr(target, "wireless"):             # workload facade
        instrument(obs, target.wireless)
    elif hasattr(target, "net"):
        instrument(obs, target.net)
    else:
        raise TypeError(
            "don't know how to instrument %r" % type(target).__name__
        )
    return obs
