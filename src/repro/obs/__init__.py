"""repro.obs — simulation-time observability (tracing/metrics/profiling).

Everything here is **off by default** and follows the fast-path knob
contract from PRs 3–4: with no flags set, the simulator carries the
shared disabled :data:`NULL_TRACER`, every histogram hook is ``None``,
and no samples, spans or snapshots are ever allocated — the
determinism digests and bench throughput are byte-identical to an
uninstrumented run (``tests/test_obs_determinism.py`` and
``benchmarks/test_bench_obs_overhead.py`` enforce both).

Typical use::

    from repro import obs

    workload = DistributedWirelessCampusWorkload(profile)
    workload.bring_up()
    bundle = obs.enable(workload, tracing=True, metrics=True,
                        sample_interval_s=1.0)
    workload.run(duration_s=60)
    bundle.tracer.export_jsonl("trace.jsonl")
    bundle.tracer.export_chrome("trace_chrome.json")   # Perfetto
    bundle.metrics.export_jsonl("metrics.jsonl")
"""

from __future__ import annotations

from repro.obs.metrics import (
    COUNT_BOUNDS,
    LATENCY_BOUNDS_S,
    Histogram,
    MetricRegistry,
)
from repro.obs.profile import EventProfile
from repro.obs.trace import NULL_SPAN, NULL_TRACER, Span, Tracer

__all__ = [
    "COUNT_BOUNDS",
    "LATENCY_BOUNDS_S",
    "EventProfile",
    "Histogram",
    "MetricRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "Observability",
    "Span",
    "Tracer",
    "enable",
    "instrument",
]


class Observability:
    """A tracer + metric registry bound to one simulator.

    Constructing the bundle installs its tracer on ``sim.tracer`` (the
    handle every instrumented device reads) and, when metrics are on,
    wires the kernel gauges and starts the daemon-event sampler.
    """

    def __init__(self, sim, tracing=False, metrics=False, max_spans=None,
                 sample_interval_s=None):
        self.sim = sim
        self.tracer = Tracer(sim, enabled=tracing, max_spans=max_spans)
        self.metrics = MetricRegistry(sim)
        self.metrics_enabled = metrics
        sim.tracer = self.tracer
        sim.metrics = self.metrics if metrics else None
        if metrics:
            self.metrics.enroll_sim(sim)
            if sample_interval_s is not None:
                self.metrics.start(sample_interval_s)

    def detach(self):
        """Restore the simulator's default (disabled) handles."""
        self.metrics.stop()
        self.sim.tracer = NULL_TRACER
        self.sim.metrics = None

    def __repr__(self):
        return "Observability(tracing=%s, metrics=%s)" % (
            self.tracer.enabled, self.metrics_enabled
        )


def _find_sim(target):
    for attr in ("sim", "net", "wireless"):
        obj = getattr(target, attr, None)
        if obj is None:
            continue
        if attr == "sim":
            return obj
        sim = _find_sim(obj)
        if sim is not None:
            return sim
    return None


def enable(target, tracing=True, metrics=True, max_spans=None,
           sample_interval_s=None):
    """One-call setup: build a bundle and instrument a topology.

    ``target`` may be a workload, a wireless facade, or a bare network;
    its simulator is discovered via ``.sim`` (directly or through
    ``.net`` / ``.wireless``).  Returns the :class:`Observability`
    bundle for export calls.
    """
    sim = _find_sim(target)
    if sim is None:
        raise TypeError("no simulator found on %r" % type(target).__name__)
    bundle = Observability(sim, tracing=tracing, metrics=metrics,
                           max_spans=max_spans,
                           sample_interval_s=sample_interval_s)
    if bundle.metrics_enabled or bundle.tracer.enabled:
        instrument(bundle, target)
    return bundle


from repro.obs.instrument import instrument  # noqa: E402  (cycle-free tail import)
