"""Per-device metric registry: counters, gauges, histograms, timeseries.

Every device already keeps a :class:`repro.core.Counters` block, but
each one is an island — a workload that wants "all the numbers" has to
know every device class and every attribute name.  The registry turns
them into one enumerable namespace:

* **counters** — enrolled ``Counters`` instances, exported under their
  normalized metric names (``Counters.metric_dict``), so
  ``wireless_in`` and ``transit_in`` both surface as ``*_packets_in``
  without touching the legacy attribute names the ledger digests read.
* **gauges** — zero-argument callables sampled at snapshot time, for
  state no counter tracks: event-queue depth and tombstone ratio,
  map-cache occupancy, megaflow entries, WLC batch backlog.
* **histograms** — bounded-bucket distributions recorded on the hot(ish)
  path by hooks that default to ``None`` (``SerialQueue.wait_hist``,
  ``Batcher.flush_hist``), so the off path stays a single ``is None``
  test.

Snapshots are stamped with sim-time and appended to an in-memory
timeseries (:attr:`MetricRegistry.samples`); :meth:`export_jsonl`
writes the append-only file the CI smoke lane validates.  Periodic
sampling rides a *daemon* event (:meth:`Simulator.schedule_daemon`) so
an armed sampler never keeps ``settle()`` loops alive.
"""

from __future__ import annotations

import json

from repro.obs.trace import jsonable

#: Default histogram bounds: latency-shaped, 1 µs .. 1 s (overflow above).
LATENCY_BOUNDS_S = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)

#: Count-shaped bounds for batch/flush sizes.
COUNT_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128)


class Histogram:
    """Fixed-bucket histogram with an overflow bucket and running stats."""

    __slots__ = ("name", "bounds", "counts", "count", "total",
                 "min_value", "max_value")

    def __init__(self, name, bounds=LATENCY_BOUNDS_S):
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min_value = None
        self.max_value = None

    def record(self, value):
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    def snapshot(self):
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min_value,
            "max": self.max_value,
        }

    def __repr__(self):
        return "Histogram(%s, n=%d, mean=%g)" % (
            self.name, self.count, self.mean
        )


class MetricRegistry:
    """One namespace over every enrolled counter block, gauge, histogram."""

    def __init__(self, sim=None):
        self.sim = sim
        self._counters = {}       # name -> Counters instance
        self._gauges = {}         # name -> zero-arg callable
        self._histograms = {}     # name -> Histogram
        self.samples = []         # appended by sample()
        self.sample_interval_s = None
        self._sampling = False

    # ------------------------------------------------------------------ enrollment
    def enroll(self, name, counters):
        """Register a ``Counters`` block under a device-scoped name.

        Re-enrolling the *same object* under the same name is a no-op
        (instrumentation may be wired more than once); a different
        object under an existing name is a bug worth surfacing.
        """
        existing = self._counters.get(name)
        if existing is not None:
            if existing is counters:
                return counters
            raise ValueError("metric name already enrolled: %r" % name)
        self._counters[name] = counters
        return counters

    def gauge(self, name, fn):
        """Register a zero-argument callable read at snapshot time."""
        self._gauges[name] = fn
        return fn

    def histogram(self, name, bounds=LATENCY_BOUNDS_S):
        """Create (or fetch) a named histogram."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(name, bounds)
        return hist

    def enroll_sim(self, sim):
        """Wire the simulator kernel's blind spots as gauges."""
        queue = sim._queue
        self.gauge("sim.queue_depth", lambda: len(queue))
        self.gauge("sim.queue_tombstones", lambda: queue.tombstones)
        self.gauge("sim.queue_compactions", lambda: queue.compactions)
        self.gauge("sim.queue_tombstones_reaped",
                   lambda: queue.tombstones_reaped)
        self.gauge("sim.events_processed", lambda: sim.events_processed)

    def enroll_chaos(self, monitor, engine=None):
        """Wire the chaos suite's health signals as gauges.

        ``chaos.blackhole_seconds`` is the probe-measured pair-seconds
        of data-plane outage (see
        :class:`repro.chaos.probes.ProbeMonitor`);
        ``chaos.reconvergence_last_s`` the most recent fault-to-repair
        delay.  Sampled alongside device counters, they put "how dark
        did the fabric go" on the same timeline as "what did the
        control plane do about it".
        """
        self.gauge("chaos.blackhole_seconds", lambda: monitor.blackhole_s)
        self.gauge("chaos.probes_lost", lambda: monitor.lost)
        self.gauge(
            "chaos.reconvergence_last_s",
            lambda: (monitor.reconvergence_s[-1]
                     if monitor.reconvergence_s else 0.0),
        )
        if engine is not None:
            self.gauge("chaos.faults_injected",
                       lambda: engine.faults_injected)
            self.gauge("chaos.faults_healed", lambda: engine.faults_healed)

    def enroll_overload(self, servers, edges=(), wlcs=()):
        """Wire the overload-armor surfaces as gauges.

        Per routing server: bounded-queue depth/backlog/pressure, shed
        totals (and the per-priority-class split), the deepest backlog
        seen, and how many acks carried the in-band overloaded bit.
        Per edge: the AIMD backpressure factor, stale map-cache serves,
        and circuit-breaker opens/deferrals.  Per WLC: backpressure
        factor and breaker deferrals.  All of these are plain attributes
        (not ``Counters`` fields), so enrolling them leaves every ledger
        digest untouched.
        """
        for index, server in enumerate(servers):
            prefix = "overload.server%d." % index
            queue = server.queue
            self.gauge(prefix + "queue_depth", lambda q=queue: q.depth)
            self.gauge(prefix + "queue_backlog_s", lambda q=queue: q.backlog_s)
            self.gauge(prefix + "queue_pressure", lambda q=queue: q.pressure)
            self.gauge(prefix + "shed_total", lambda q=queue: q.shed_total)
            self.gauge(prefix + "shed_by_class",
                       lambda q=queue: dict(q.shed_by_class))
            self.gauge(prefix + "max_depth_seen",
                       lambda q=queue: q.max_depth_seen)
            self.gauge(prefix + "overload_signals",
                       lambda s=server: s.overload_signals)
        for index, edge in enumerate(edges):
            prefix = "overload.edge%d." % index
            self.gauge(prefix + "bp_factor", lambda e=edge: e._bp_factor)
            self.gauge(prefix + "bp_overload_acks",
                       lambda e=edge: e.bp_overload_acks)
            self.gauge(prefix + "stale_served", lambda e=edge: e.stale_served)
            self.gauge(prefix + "stale_hits",
                       lambda e=edge: e.map_cache.stale_hits)
            self.gauge(prefix + "breaker_deferrals",
                       lambda e=edge: e.breaker_deferrals)
            self.gauge(
                prefix + "breaker_opens",
                lambda e=edge: sum(b.opens for b in e._breakers.values()),
            )
        for index, wlc in enumerate(wlcs):
            prefix = "overload.wlc%d." % index
            self.gauge(prefix + "bp_factor", lambda w=wlc: w._bp_factor)
            self.gauge(prefix + "bp_overload_acks",
                       lambda w=wlc: w.bp_overload_acks)
            self.gauge(prefix + "breaker_deferrals",
                       lambda w=wlc: w.breaker_deferrals)

    def auto_enroll(self):
        """Enroll every live tracked :class:`Counters` instance.

        Requires :meth:`repro.core.counters.Counters.track_instances`
        to have been armed before the devices were built; instances are
        named ``<metric_name>.<n>`` in creation order.
        """
        from repro.core.counters import Counters

        by_kind = {}
        enrolled = 0
        mine = set(id(c) for c in self._counters.values())
        for counters in Counters.tracked_instances():
            if id(counters) in mine:
                continue
            kind = type(counters).metric_name()
            index = by_kind.get(kind, 0)
            by_kind[kind] = index + 1
            self.enroll("%s.%d" % (kind, index), counters)
            enrolled += 1
        return enrolled

    # ------------------------------------------------------------------ snapshots
    def snapshot(self):
        """One sim-time-stamped reading of everything registered."""
        now = self.sim.now if self.sim is not None else 0.0
        return {
            "t": now,
            "counters": {
                name: counters.metric_dict()
                for name, counters in sorted(self._counters.items())
            },
            "gauges": {
                name: jsonable(fn())
                for name, fn in sorted(self._gauges.items())
            },
            "histograms": {
                name: hist.snapshot()
                for name, hist in sorted(self._histograms.items())
            },
        }

    def sample(self):
        """Append a snapshot to the in-memory timeseries."""
        row = self.snapshot()
        self.samples.append(row)
        return row

    def start(self, interval_s):
        """Begin periodic sampling on a daemon event.

        Daemon events do not count as pending work, so an armed sampler
        never wedges ``settle()``-style drain loops or open-ended
        ``run()`` calls.
        """
        if self.sim is None:
            raise ValueError("cannot sample without a simulator")
        if interval_s <= 0:
            raise ValueError("sample interval must be positive")
        self.sample_interval_s = interval_s
        if not self._sampling:
            self._sampling = True
            self.sim.schedule_daemon(interval_s, self._tick)

    def stop(self):
        self._sampling = False

    def _tick(self):
        if not self._sampling:
            return
        self.sample()
        self.sim.schedule_daemon(self.sample_interval_s, self._tick)

    # ------------------------------------------------------------------ export
    def counter_names(self):
        return sorted(self._counters)

    def export_jsonl(self, path):
        """Write the timeseries append-only, one snapshot per line."""
        with open(path, "w") as handle:
            for row in self.samples:
                handle.write(json.dumps(row, sort_keys=True))
                handle.write("\n")
        return len(self.samples)

    def __repr__(self):
        return "MetricRegistry(counters=%d, gauges=%d, hists=%d, samples=%d)" % (
            len(self._counters), len(self._gauges), len(self._histograms),
            len(self.samples),
        )
