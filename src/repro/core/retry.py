"""Retry policies: exponential backoff with seeded jitter.

Every "send and hope" control message in the fabric (Map-Register,
Map-Notify ack handshakes, transit resolution) historically got exactly
one shot; a lost packet meant state stayed stale until some unrelated
event repaired it.  The chaos suite injects exactly the failures that
lose those packets, so senders now share one backoff shape instead of
growing ad-hoc timers: attempt ``n`` waits ``base * multiplier**n``
seconds (capped), plus a proportional jitter drawn from the *caller's*
:class:`~repro.sim.rng.SeededRng` so retry storms decorrelate without
breaking run-to-run determinism.

The policy object is pure configuration — it holds no per-attempt
state and no RNG of its own, so one instance can be shared by every
device in a fabric.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError


class RetryPolicy:
    """Exponential backoff schedule for unacknowledged control messages.

    Parameters
    ----------
    base_s:
        Delay before the first retry (attempt 0).
    multiplier:
        Backoff growth factor per attempt.
    max_delay_s:
        Ceiling on any single delay (the backoff plateaus here).
    max_attempts:
        Retries allowed before the sender gives up (the original send
        does not count).
    jitter:
        Fraction of the computed delay added as uniform random jitter
        (``0`` disables; requires the caller to pass an ``rng``).
    """

    __slots__ = ("base_s", "multiplier", "max_delay_s", "max_attempts",
                 "jitter")

    def __init__(self, base_s=0.2, multiplier=2.0, max_delay_s=5.0,
                 max_attempts=5, jitter=0.1):
        if base_s <= 0:
            raise ConfigurationError("retry base_s must be positive")
        if multiplier < 1.0:
            raise ConfigurationError("retry multiplier must be >= 1")
        if max_attempts < 1:
            raise ConfigurationError("a retry policy needs >= 1 attempt")
        if not 0.0 <= jitter <= 1.0:
            raise ConfigurationError("jitter is a fraction in [0, 1]")
        self.base_s = base_s
        self.multiplier = multiplier
        self.max_delay_s = max_delay_s
        self.max_attempts = max_attempts
        self.jitter = jitter

    def delay_s(self, attempt, rng=None):
        """Backoff delay before retry number ``attempt`` (0-based).

        A jittered policy *requires* the caller's seeded ``rng``:
        silently skipping the jitter would re-synchronize every
        retrier in the fabric (the exact storm the jitter exists to
        break up) while looking configured, so that mismatch is a
        loud configuration error instead.
        """
        delay = min(self.base_s * self.multiplier ** attempt,
                    self.max_delay_s)
        if self.jitter:
            if rng is None:
                raise ConfigurationError(
                    "RetryPolicy has jitter=%s but delay_s() was called "
                    "without an rng; pass the device's SeededRng (or "
                    "configure jitter=0)" % self.jitter)
            delay += rng.uniform(0.0, delay * self.jitter)
        return delay

    def exhausted(self, attempt):
        """True once ``attempt`` retries have already been spent."""
        return attempt >= self.max_attempts

    def __repr__(self):
        return "RetryPolicy(base=%gs, x%g, cap=%gs, attempts=%d)" % (
            self.base_s, self.multiplier, self.max_delay_s,
            self.max_attempts,
        )
