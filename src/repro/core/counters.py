"""Declarative event-counter bundles shared by fabric devices.

Every router and server in the simulation exposes a block of integer
counters (packets in, drops by cause, control messages by type).  The
seed grew three hand-rolled variants of the same class; this module is
the single shape they all share: subclasses list their field names in
``FIELDS`` and get zero-initialisation, ``as_dict`` and ``reset`` for
free, so experiments can diff/aggregate any device's counters uniformly.

Observability additions (all backwards-compatible):

* ``METRIC_NAMES`` — a per-subclass map of legacy field name to its
  normalized metric name (``wireless_in`` → ``wireless_packets_in``).
  The legacy names stay the real instance attributes — hot paths and
  the workload ledger digests are untouched — but each normalized name
  is installed as an alias property, and :meth:`metric_dict` exports
  under the normalized spelling for uniform registry enumeration.
* instance tracking — :meth:`track_instances` arms a weakref roster of
  every ``Counters`` built afterwards, which is how
  ``MetricRegistry.auto_enroll`` finds counter blocks it was never
  handed explicitly.
"""

from __future__ import annotations

import weakref


def _alias(field):
    """An alias property forwarding to the legacy instance attribute."""

    def _get(self):
        return getattr(self, field)

    def _set(self, value):
        setattr(self, field, value)

    _get.__name__ = _set.__name__ = field
    return property(_get, _set, doc="alias of %r" % field)


class Counters:
    """Base class for a fixed set of named integer counters.

    Subclasses declare ``FIELDS`` (a tuple of attribute names); instances
    start every field at zero.  Fields remain plain attributes, so hot
    paths keep doing ``counters.policy_drops += 1`` with no indirection.
    """

    FIELDS = ()

    #: legacy field -> normalized metric name (subclasses override);
    #: fields not listed here export under their own name unchanged
    METRIC_NAMES = {}

    _subclasses = []
    _track = False
    _instances = []

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        Counters._subclasses.append(cls)
        for field, metric in cls.METRIC_NAMES.items():
            if field not in cls.FIELDS:
                raise TypeError(
                    "%s.METRIC_NAMES maps unknown field %r"
                    % (cls.__name__, field)
                )
            if metric in cls.FIELDS:
                if metric != field:
                    raise TypeError(
                        "%s.METRIC_NAMES alias %r shadows a real field"
                        % (cls.__name__, metric)
                    )
                continue
            if not hasattr(cls, metric):
                setattr(cls, metric, _alias(field))

    def __init__(self):
        for field in self.FIELDS:
            setattr(self, field, 0)
        if Counters._track:
            Counters._instances.append(weakref.ref(self))

    def as_dict(self):
        return {field: getattr(self, field) for field in self.FIELDS}

    def reset(self):
        for field in self.FIELDS:
            setattr(self, field, 0)

    # ------------------------------------------------------------------ observability
    @classmethod
    def metric_name(cls):
        """Registry-facing name of this counter block (snake_case)."""
        name = cls.__name__
        out = []
        for index, char in enumerate(name):
            if char.isupper() and index and not name[index - 1].isupper():
                out.append("_")
            out.append(char.lower())
        return "".join(out)

    @classmethod
    def metric_fields(cls):
        """Normalized export names, in ``FIELDS`` order."""
        names = cls.METRIC_NAMES
        return tuple(names.get(field, field) for field in cls.FIELDS)

    def metric_dict(self):
        """Like :meth:`as_dict`, but keyed by normalized metric names."""
        names = self.METRIC_NAMES
        return {
            names.get(field, field): getattr(self, field)
            for field in self.FIELDS
        }

    @classmethod
    def known_subclasses(cls):
        return tuple(Counters._subclasses)

    @classmethod
    def track_instances(cls, on=True):
        """Arm (or disarm) the weakref roster of future instances."""
        Counters._track = on
        if not on:
            Counters._instances = []

    @classmethod
    def tracked_instances(cls):
        """Live tracked instances, in creation order (dead refs pruned)."""
        alive = []
        refs = []
        for ref in Counters._instances:
            counters = ref()
            if counters is not None:
                alive.append(counters)
                refs.append(ref)
        Counters._instances = refs
        return alive

    def __repr__(self):
        nonzero = ", ".join(
            "%s=%d" % (field, getattr(self, field))
            for field in self.FIELDS
            if getattr(self, field)
        )
        return "%s(%s)" % (type(self).__name__, nonzero or "all zero")
