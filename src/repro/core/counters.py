"""Declarative event-counter bundles shared by fabric devices.

Every router and server in the simulation exposes a block of integer
counters (packets in, drops by cause, control messages by type).  The
seed grew three hand-rolled variants of the same class; this module is
the single shape they all share: subclasses list their field names in
``FIELDS`` and get zero-initialisation, ``as_dict`` and ``reset`` for
free, so experiments can diff/aggregate any device's counters uniformly.
"""

from __future__ import annotations


class Counters:
    """Base class for a fixed set of named integer counters.

    Subclasses declare ``FIELDS`` (a tuple of attribute names); instances
    start every field at zero.  Fields remain plain attributes, so hot
    paths keep doing ``counters.policy_drops += 1`` with no indirection.
    """

    FIELDS = ()

    def __init__(self):
        for field in self.FIELDS:
            setattr(self, field, 0)

    def as_dict(self):
        return {field: getattr(self, field) for field in self.FIELDS}

    def reset(self):
        for field in self.FIELDS:
            setattr(self, field, 0)

    def __repr__(self):
        nonzero = ", ".join(
            "%s=%d" % (field, getattr(self, field))
            for field in self.FIELDS
            if getattr(self, field)
        )
        return "%s(%s)" % (type(self).__name__, nonzero or "all zero")
