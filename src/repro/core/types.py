"""Identifier types used across the SDA fabric.

The paper (sec. 3.2.1) defines two segmentation identifiers:

* **VN** (Virtual Network) — a 24-bit identifier carried in the VXLAN VNI
  field, providing "macro" segmentation (isolated routing domains).
* **GroupId** (a.k.a. Scalable Group Tag, SGT) — a 16-bit identifier carried
  in the VXLAN-GPO Group Policy ID field, providing "micro" segmentation
  inside a VN.

Both are modelled as small value classes wrapping an ``int`` with range
validation, so that a GroupId can never silently flow into a field expecting
a VN.  They are hashable, ordered and cheap.
"""

from __future__ import annotations

import functools

from repro.core.errors import ConfigurationError

VN_BITS = 24
GROUP_BITS = 16
MAX_VN = (1 << VN_BITS) - 1
MAX_GROUP = (1 << GROUP_BITS) - 1


@functools.total_ordering
class _BoundedId:
    """An immutable integer identifier constrained to ``[0, max_value]``."""

    __slots__ = ("_value",)

    _max_value = 0
    _label = "id"

    def __init__(self, value):
        value = int(value)
        if not 0 <= value <= self._max_value:
            raise ConfigurationError(
                "%s %d out of range [0, %d]" % (self._label, value, self._max_value)
            )
        object.__setattr__(self, "_value", value)

    def __setattr__(self, name, value):
        raise AttributeError("%s is immutable" % type(self).__name__)

    @property
    def value(self):
        """The wrapped integer value."""
        return self._value

    def __int__(self):
        return self._value

    def __index__(self):
        return self._value

    def __eq__(self, other):
        if isinstance(other, type(self)):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __lt__(self, other):
        if isinstance(other, type(self)):
            return self._value < other._value
        if isinstance(other, int):
            return self._value < other
        return NotImplemented

    def __hash__(self):
        return hash((type(self).__name__, self._value))

    def __repr__(self):
        return "%s(%d)" % (type(self).__name__, self._value)


class VNId(_BoundedId):
    """A 24-bit Virtual Network identifier (VXLAN VNI)."""

    __slots__ = ()
    _max_value = MAX_VN
    _label = "VN"


class GroupId(_BoundedId):
    """A 16-bit endpoint group identifier (Scalable Group Tag)."""

    __slots__ = ()
    _max_value = MAX_GROUP
    _label = "GroupId"


#: The default VN endpoints land in when the operator does not segment.
DEFAULT_VN = VNId(1)

#: Group assigned to traffic whose source group could not be determined.
UNKNOWN_GROUP = GroupId(0)


class RouterId(str):
    """Human-readable unique router name (e.g. ``"edge-3"``).

    A plain ``str`` subclass: it keeps log output readable while still
    giving type hints meaning.
    """

    __slots__ = ()


class EndpointId(str):
    """Unique endpoint identity as known to the policy server.

    This models the RADIUS identity (username, device certificate CN or MAC
    for MAB) — *not* the endpoint's IP, which is assigned later by DHCP.
    """

    __slots__ = ()


class PortId(int):
    """A switch port index on a router."""

    __slots__ = ()
