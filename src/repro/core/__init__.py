"""Core types, identifiers, errors and configuration shared across repro.

This subpackage holds the vocabulary of the SDA fabric: virtual network
identifiers, group identifiers, endpoint identities, and the exception
hierarchy used throughout the library.
"""

from repro.core.batching import Batcher
from repro.core.breaker import BreakerPolicy, CircuitBreaker
from repro.core.counters import Counters
from repro.core.queueing import (
    PRIO_BULK,
    PRIO_CRITICAL,
    PRIO_NORMAL,
    SerialQueue,
)
from repro.core.retry import RetryPolicy
from repro.core.errors import (
    ReproError,
    ConfigurationError,
    AuthenticationError,
    PolicyError,
    RoutingError,
    NoRouteError,
    EncapsulationError,
    SimulationError,
)
from repro.core.types import (
    VNId,
    GroupId,
    RouterId,
    EndpointId,
    PortId,
    DEFAULT_VN,
    UNKNOWN_GROUP,
)

__all__ = [
    "Batcher",
    "BreakerPolicy",
    "CircuitBreaker",
    "Counters",
    "PRIO_BULK",
    "PRIO_CRITICAL",
    "PRIO_NORMAL",
    "RetryPolicy",
    "SerialQueue",
    "ReproError",
    "ConfigurationError",
    "AuthenticationError",
    "PolicyError",
    "RoutingError",
    "NoRouteError",
    "EncapsulationError",
    "SimulationError",
    "VNId",
    "GroupId",
    "RouterId",
    "EndpointId",
    "PortId",
    "DEFAULT_VN",
    "UNKNOWN_GROUP",
]
