"""Flush-window batching: coalesce control-plane work into one unit.

The scale lesson behind this module: past a few hundred events per
second, a control plane that pays a fixed per-message cost (message
header, queue entry, base service time) for every endpoint event
saturates on the *fixed* part, not the per-record part.  Production
map-servers and RADIUS front-ends amortize it by carrying many records
per message and by applying a backlog of cheap state updates under one
service charge.  :class:`Batcher` is the single copy of that pattern.

Items submitted while a flush is pending join the open batch; the first
item of a batch arms a flush timer ``window_s`` in the future (a window
of 0 still coalesces everything submitted within the *current* event,
because the flush fires as a zero-delay event after it).  ``max_items``
bounds the batch so a storm cannot build unbounded latency.

The flush can optionally be charged to a :class:`SerialQueue` — the
busy-until CPU model the WLCs and servers already use — so a batch
costs one ``service_s`` instead of one per item.  Without a queue the
flush callback runs directly at flush time (pure message coalescing).
"""

from __future__ import annotations


class Batcher:
    """Coalesce submitted items; flush them together after a window.

    Parameters
    ----------
    sim:
        The simulation kernel (for the flush timer).
    flush:
        Callable ``flush(items)`` receiving the batched items in
        submission order.
    window_s:
        How long the first item of a batch waits for company.  0 means
        "whatever arrives within the current event" (zero-delay flush).
    max_items:
        Flush immediately once a batch reaches this size (``None`` =
        unbounded).
    queue / service_s:
        When ``queue`` (a :class:`repro.core.queueing.SerialQueue`) is
        given, the flush is submitted to it for ``service_s`` — one
        service charge for the whole batch, which is exactly the
        batching ablation's point.
    """

    __slots__ = ("sim", "_flush", "window_s", "max_items", "queue",
                 "service_s", "_items", "_timer",
                 "batches_flushed", "items_submitted", "max_batch",
                 "flush_hist")

    def __init__(self, sim, flush, window_s=0.0, max_items=None,
                 queue=None, service_s=0.0):
        self.sim = sim
        self._flush = flush
        self.window_s = window_s
        self.max_items = max_items
        self.queue = queue
        self.service_s = service_s
        self._items = []
        self._timer = None
        self.batches_flushed = 0
        self.items_submitted = 0
        self.max_batch = 0
        #: observability hook: Histogram of flush sizes (None = off)
        self.flush_hist = None

    @property
    def pending(self):
        """Items waiting in the open batch."""
        return len(self._items)

    def submit(self, item):
        """Add an item to the open batch (arming the flush timer if new)."""
        arm = not self._items
        self._items.append(item)
        self.items_submitted += 1
        if self.max_items is not None and len(self._items) >= self.max_items:
            self.flush_now()
            return
        if arm:
            self._timer = self.sim.schedule(self.window_s, self._on_timer)

    def _on_timer(self):
        self._timer = None
        self.flush_now()

    def flush_now(self):
        """Flush the open batch immediately (no-op when empty)."""
        if self._timer is not None:
            self.sim.cancel(self._timer)
            self._timer = None
        if not self._items:
            return
        items, self._items = self._items, []
        self.batches_flushed += 1
        if len(items) > self.max_batch:
            self.max_batch = len(items)
        if self.flush_hist is not None:
            self.flush_hist.record(len(items))
        if self.queue is not None:
            self.queue.submit(self.service_s, self._flush, items)
        else:
            self._flush(items)

    def discard(self):
        """Drop the open batch without flushing (owner reset/reboot)."""
        if self._timer is not None:
            self.sim.cancel(self._timer)
            self._timer = None
        self._items = []
