"""Circuit breakers: keep retry storms from amplifying an outage.

``RetryPolicy`` (PR 7) makes every device retry an unacked registration
with exponential backoff — correct for one lost message, but when a map
server is down or drowning, a whole fabric of independent retriers turns
into a synchronized storm that arrives exactly when the server tries to
come back.  A :class:`CircuitBreaker` sits in front of each retry path
and counts consecutive failures per dependency: past a threshold it
*opens* and the device stops sending entirely for a cool-down window,
then *half-opens* and risks a single probe.  A successful probe closes
the breaker; a failed one re-opens it.

The cool-down is jittered through the caller's seeded RNG so a fleet of
breakers tripped by the same outage de-synchronizes its probes — same
determinism contract as ``RetryPolicy.delay_s`` (and the same rule: a
jittered policy without an RNG is a configuration error, never a silent
no-jitter fallback).

Split like the retry module: :class:`BreakerPolicy` is pure shared
configuration, :class:`CircuitBreaker` is the per-(device, dependency)
state machine.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


class BreakerPolicy:
    """Pure configuration; one instance can serve every breaker."""

    __slots__ = ("failure_threshold", "reset_timeout_s", "jitter")

    def __init__(self, failure_threshold=4, reset_timeout_s=2.0, jitter=0.1):
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0.0:
            raise ConfigurationError("reset_timeout_s must be > 0")
        if jitter < 0.0:
            raise ConfigurationError("jitter must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.jitter = jitter

    def __repr__(self):
        return ("BreakerPolicy(failure_threshold=%d, reset_timeout_s=%s, "
                "jitter=%s)" % (self.failure_threshold, self.reset_timeout_s,
                                self.jitter))


class CircuitBreaker:
    """closed -> open -> half-open state machine over one dependency.

    Protocol: call :meth:`allow` before each send; on an ack call
    :meth:`record_success`, on a timeout :meth:`record_failure`.  While
    open, :meth:`allow` refuses until the (jittered) reset timeout
    elapses; the first allowed call after that is the half-open probe,
    and its outcome closes or re-trips the breaker.
    """

    __slots__ = ("sim", "policy", "_rng", "state", "failures", "opens",
                 "rejections", "probes", "_retry_at")

    def __init__(self, sim, policy, rng=None):
        if policy.jitter and rng is None:
            raise ConfigurationError(
                "BreakerPolicy has jitter=%s but no rng was supplied; "
                "seeded jitter is required for deterministic probing"
                % policy.jitter)
        self.sim = sim
        self.policy = policy
        self._rng = rng
        self.state = STATE_CLOSED
        self.failures = 0
        self.opens = 0
        self.rejections = 0
        self.probes = 0
        self._retry_at = 0.0

    def allow(self):
        """True if a send may go out right now."""
        if self.state == STATE_CLOSED:
            return True
        if self.state == STATE_OPEN and self.sim.now >= self._retry_at:
            self.state = STATE_HALF_OPEN
            self.probes += 1
            return True
        # Open and cooling down, or half-open with the probe in flight.
        self.rejections += 1
        return False

    def record_success(self):
        self.state = STATE_CLOSED
        self.failures = 0

    def record_failure(self):
        if self.state == STATE_HALF_OPEN:
            self._trip()
            return
        self.failures += 1
        if self.state == STATE_CLOSED \
                and self.failures >= self.policy.failure_threshold:
            self._trip()

    def _trip(self):
        self.state = STATE_OPEN
        self.opens += 1
        self.failures = 0
        timeout = self.policy.reset_timeout_s
        if self.policy.jitter:
            timeout += self._rng.uniform(0.0, timeout * self.policy.jitter)
        self._retry_at = self.sim.now + timeout

    @property
    def remaining_s(self):
        """Seconds until an open breaker will half-open (0 otherwise)."""
        if self.state != STATE_OPEN:
            return 0.0
        return max(0.0, self._retry_at - self.sim.now)
