"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming from the fabric with a single ``except`` clause while
still being able to discriminate the failure domain (configuration, policy,
routing, ...).
"""


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when the fabric or a component is mis-configured.

    Examples: duplicate router ids, a VN id outside the 24-bit space, an
    edge router attached to a port that does not exist.
    """


class AuthenticationError(ReproError):
    """Raised when endpoint onboarding fails authentication.

    Mirrors a RADIUS Access-Reject: the endpoint's credentials are not in
    the policy server database or the supplied secret is wrong.
    """


class PolicyError(ReproError):
    """Raised for invalid policy operations.

    Examples: referencing an unknown group in the connectivity matrix,
    assigning an endpoint to a group that does not exist.
    """


class RoutingError(ReproError):
    """Base class for routing/control-plane failures."""


class NoRouteError(RoutingError):
    """Raised when a lookup finds no route and no fallback applies.

    In the SDA data plane a miss normally falls back to the default route
    towards the border; this error signals the *absence* of that fallback
    (e.g. the border itself has no route to the destination).
    """


class EncapsulationError(ReproError):
    """Raised when a VXLAN/LISP header cannot be encoded or decoded."""


class SimulationError(ReproError):
    """Raised on misuse of the discrete-event simulation kernel.

    Examples: scheduling an event in the past, running a simulator that
    was already stopped.
    """
