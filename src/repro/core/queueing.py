"""Single-server FIFO work queues (the busy-until model).

Several devices in the reproduction serialize work through one control
CPU — the centralized WLAN controller (data *and* handover processing),
the fabric WLC (association processing only) — and the whole point of
comparing them is the backlog that queue builds.  This module is the
single copy of that model: work submitted while the server is busy
starts when the previous item finishes, and the worst queueing delay
observed is tracked for the experiments.
"""

from __future__ import annotations


class SerialQueue:
    """One server, FIFO order, deterministic busy-until bookkeeping."""

    def __init__(self, sim):
        self.sim = sim
        self._busy_until = 0.0
        self.max_delay_s = 0.0
        self.submitted = 0
        #: observability hook: a Histogram recording per-item queue wait;
        #: None (the default) keeps the off path to a single test
        self.wait_hist = None

    def submit(self, service_s, fn, *args):
        """Queue ``fn(*args)`` behind current work for ``service_s``.

        Returns the scheduled event (cancellable via the simulator).
        """
        now = self.sim.now
        start = max(now, self._busy_until)
        self._busy_until = start + service_s
        self.max_delay_s = max(self.max_delay_s, start - now)
        self.submitted += 1
        if self.wait_hist is not None:
            self.wait_hist.record(start - now)
        return self.sim.schedule(self._busy_until - now, fn, *args)

    @property
    def backlog_s(self):
        """Work currently queued ahead of a new arrival, in seconds."""
        return max(0.0, self._busy_until - self.sim.now)
