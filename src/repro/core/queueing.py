"""Single-server FIFO work queues (the busy-until model).

Several devices in the reproduction serialize work through one control
CPU — the centralized WLAN controller (data *and* handover processing),
the fabric WLC (association processing only), the map server's control
plane — and the whole point of comparing them is the backlog that queue
builds.  This module is the single copy of that model: work submitted
while the server is busy starts when the previous item finishes, and the
worst queueing delay observed is tracked for the experiments.

Unbounded by default — the seed behaviour, which is what the paper's
fig. 7c saturation curves show: offered load beyond capacity builds an
ever-growing backlog.  The overload-armor knobs (``max_depth`` /
``max_backlog_s``) turn the queue into a *bounded* one: work past
capacity is shed (tail drop) with per-class accounting, and
:meth:`admit` layers priority-aware admission control on top so bulk
work (periodic refreshes) sheds first while critical work (resolutions,
roam registrations) is still served.  The admission thresholds are
monotone in priority, which makes priority inversion structurally
impossible: any pressure that sheds a critical item has already shed
every bulk item.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError

#: Admission priority classes (lower value = more critical).
PRIO_CRITICAL = 0
PRIO_NORMAL = 1
PRIO_BULK = 2

#: Fraction of capacity (pressure) below which each class is admitted.
#: Monotone by construction — see the module docstring.
ADMIT_FRACTIONS = {
    PRIO_CRITICAL: 1.0,
    PRIO_NORMAL: 0.9,
    PRIO_BULK: 0.5,
}


class SerialQueue:
    """One server, FIFO order, deterministic busy-until bookkeeping.

    ``reset()`` models a crash wiping the in-flight work: completions
    already scheduled against the old epoch become no-ops (optionally
    reported through the ``on_stale`` hook) instead of firing into the
    restarted server.
    """

    def __init__(self, sim, max_depth=None, max_backlog_s=None):
        if max_depth is not None and max_depth < 1:
            raise ConfigurationError("max_depth must be >= 1 when set")
        if max_backlog_s is not None and max_backlog_s <= 0.0:
            raise ConfigurationError("max_backlog_s must be > 0 when set")
        self.sim = sim
        self._busy_until = 0.0
        self.max_delay_s = 0.0
        self.submitted = 0
        #: observability hook: a Histogram recording per-item queue wait;
        #: None (the default) keeps the off path to a single test
        self.wait_hist = None
        self.max_depth = max_depth
        self.max_backlog_s = max_backlog_s
        #: items queued or in service right now
        self.depth = 0
        self.max_depth_seen = 0
        self.shed_total = 0
        self.shed_by_class = {
            PRIO_CRITICAL: 0, PRIO_NORMAL: 0, PRIO_BULK: 0,
        }
        #: optional list capturing ``(now, priority, admitted, pressure)``
        #: per admission decision — the priority-inversion property test
        #: reads it; None (the default) is free
        self.admission_log = None
        #: optional ``fn(work_fn, args)`` hook invoked when a completion
        #: scheduled before a ``reset()`` fires against the new epoch
        self.on_stale = None
        self._epoch = 0

    @property
    def bounded(self):
        return self.max_depth is not None or self.max_backlog_s is not None

    @property
    def pressure(self):
        """Utilisation of the tightest configured bound, 0.0 if none.

        1.0 means at capacity; admission thresholds are fractions of
        this scale.
        """
        pressure = 0.0
        if self.max_depth is not None:
            pressure = self.depth / self.max_depth
        if self.max_backlog_s is not None:
            pressure = max(pressure, self.backlog_s / self.max_backlog_s)
        return pressure

    def admit(self, priority=PRIO_NORMAL):
        """Admission check with shed accounting; True means go submit.

        Unbounded queues admit everything.  Bounded queues admit a
        class only while pressure is below its ``ADMIT_FRACTIONS``
        threshold, so bulk work sheds first as pressure builds.
        """
        pressure = self.pressure
        admitted = (not self.bounded) or pressure < ADMIT_FRACTIONS[priority]
        if self.admission_log is not None:
            self.admission_log.append(
                (self.sim.now, priority, admitted, pressure))
        if not admitted:
            self.shed_total += 1
            self.shed_by_class[priority] += 1
        return admitted

    def try_submit(self, service_s, fn, *args, priority=PRIO_NORMAL):
        """Admission-checked submit; returns the event or ``None`` (shed)."""
        if not self.admit(priority):
            return None
        return self.submit(service_s, fn, *args)

    def submit(self, service_s, fn, *args):
        """Queue ``fn(*args)`` behind current work for ``service_s``.

        Unchecked: the caller has already passed admission (or the
        queue is unbounded).  Returns the scheduled event (cancellable
        via the simulator).
        """
        now = self.sim.now
        start = max(now, self._busy_until)
        self._busy_until = start + service_s
        self.max_delay_s = max(self.max_delay_s, start - now)
        self.submitted += 1
        self.depth += 1
        if self.depth > self.max_depth_seen:
            self.max_depth_seen = self.depth
        if self.wait_hist is not None:
            self.wait_hist.record(start - now)
        return self.sim.schedule(self._busy_until - now, self._run,
                                 self._epoch, fn, args)

    def _run(self, epoch, fn, args):
        if epoch != self._epoch:
            # Scheduled before a reset (crash): the work is gone.
            if self.on_stale is not None:
                self.on_stale(fn, args)
            return
        self.depth -= 1
        fn(*args)

    def reset(self):
        """Crash semantics: drop queued work, free the server."""
        self._epoch += 1
        self._busy_until = 0.0
        self.depth = 0

    @property
    def backlog_s(self):
        """Work currently queued ahead of a new arrival, in seconds."""
        return max(0.0, self._busy_until - self.sim.now)
