"""Shared traffic machinery: popularity models and flow generators."""

from __future__ import annotations

from repro.core.errors import ConfigurationError


class PopularityModel:
    """Zipf-weighted destination popularity over a candidate list.

    Campus traffic concentrates on a few servers — the skew is what makes
    a reactive cache effective (a handful of popular destinations account
    for most resolutions, so edge caches stay small relative to the full
    endpoint population).
    """

    def __init__(self, candidates, rng, skew=1.0):
        if not candidates:
            raise ConfigurationError("popularity model needs candidates")
        self._candidates = list(candidates)
        self._weights = rng.zipf_weights(len(self._candidates), skew=skew)
        self._rng = rng

    def pick(self):
        return self._candidates[self._rng.weighted_index(self._weights)]

    def __len__(self):
        return len(self._candidates)


class FlowGenerator:
    """Per-endpoint flow initiation loop with exponential inter-arrivals.

    The loop self-schedules while ``active``; the owner toggles activity
    on attach/detach.  ``fire(endpoint)`` is supplied by the workload and
    performs one flow (destination choice + packet injection).

    ``packets_per_flow`` models each flow as a burst of that many
    packets: the tick then calls ``fire(endpoint, packets_per_flow)``
    and the workload decides whether to inject them one packet object at
    a time (the baseline) or as a single packet train (the data-plane
    fast path) — the destination is picked once per flow either way, so
    the two modes consume identical randomness.  With the default of 1
    the legacy single-argument ``fire(endpoint)`` contract is kept.
    """

    def __init__(self, sim, endpoint, rate_fn, fire, rng,
                 packets_per_flow=1):
        """``rate_fn() -> flows per second right now`` (diurnal rates)."""
        if packets_per_flow < 1:
            raise ConfigurationError("packets_per_flow must be >= 1")
        self.sim = sim
        self.endpoint = endpoint
        self.rate_fn = rate_fn
        self.fire = fire
        self.rng = rng
        self.packets_per_flow = packets_per_flow
        self.active = False
        self._event = None
        self.flows_fired = 0

    def start(self):
        if self.active:
            return
        self.active = True
        self._schedule_next()

    def stop(self):
        self.active = False
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None

    def _schedule_next(self):
        rate = self.rate_fn()
        if rate <= 0:
            # Quiescent: re-check in a while (cheap poll, avoids a busy loop).
            self._event = self.sim.schedule(600.0, self._tick_idle)
            return
        gap = self.rng.expovariate(rate)
        self._event = self.sim.schedule(gap, self._tick)

    def _tick_idle(self):
        if self.active:
            self._schedule_next()

    def _tick(self):
        if not self.active:
            return
        self.flows_fired += 1
        if self.packets_per_flow == 1:
            self.fire(self.endpoint)
        else:
            self.fire(self.endpoint, self.packets_per_flow)
        if self.active:
            self._schedule_next()
