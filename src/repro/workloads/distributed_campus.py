"""Distributed-campus workload: N federated sites under realistic load.

The multi-site counterpart of :mod:`repro.workloads.campus`: every site
hosts users and a few servers; users chat mostly with local servers but a
configurable fraction of flows crosses the transit (central services,
cross-campus collaboration), and a slice of the user population roams to
another site mid-run and comes home later (travelling staff).

The run reports exactly the quantities the multi-site design is judged
on: first-packet latency split intra/inter, delivery accounting, transit
control-plane load, and the aggregates-only invariant.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.multisite.network import MultiSiteConfig, MultiSiteNetwork
from repro.sim.rng import SeededRng
from repro.workloads.traffic import FlowGenerator, PopularityModel


class DistributedCampusProfile:
    """Shape of the federation: sites, per-site population, traffic mix."""

    def __init__(self, num_sites=3, edges_per_site=3, users_per_site=12,
                 servers_per_site=2, inter_site_fraction=0.3,
                 roaming_fraction=0.25, flow_interval_s=2.0,
                 transit_delay_s=2e-3):
        if num_sites < 1:
            raise ConfigurationError("distributed campus needs at least one site")
        self.num_sites = num_sites
        self.edges_per_site = edges_per_site
        self.users_per_site = users_per_site
        self.servers_per_site = servers_per_site
        #: fraction of flows aimed at a *remote* site (when there is one)
        self.inter_site_fraction = inter_site_fraction if num_sites > 1 else 0.0
        #: fraction of users that travel to another site mid-run
        self.roaming_fraction = roaming_fraction if num_sites > 1 else 0.0
        self.flow_interval_s = flow_interval_s
        self.transit_delay_s = transit_delay_s


class DistributedCampusWorkload:
    """Drives a MultiSiteNetwork through one traffic epoch."""

    VN_ID = 4099

    def __init__(self, profile=None, seed=3):
        self.profile = profile or DistributedCampusProfile()
        self.seed = seed
        self.rng = SeededRng(seed)
        self._traffic_rng = self.rng.spawn("traffic")
        self._roam_rng = self.rng.spawn("roam")

        profile = self.profile
        self.net = MultiSiteNetwork(MultiSiteConfig(
            num_sites=profile.num_sites,
            edges_per_site=profile.edges_per_site,
            transit_delay_s=profile.transit_delay_s,
            seed=seed,
        ))
        self.users = []       # per site: list of user endpoints
        self.servers = []     # per site: list of server endpoints
        self._site_of = {}    # identity -> home site index
        self._generators = []
        self.intra_delays = []
        self.inter_delays = []
        self._build_population()

    # ------------------------------------------------------------------ population
    def _build_population(self):
        net = self.net
        profile = self.profile
        net.define_vn("campus", self.VN_ID, "10.128.0.0/12")
        net.define_group("users", 10, self.VN_ID)
        net.define_group("servers", 30, self.VN_ID)
        net.allow("users", "servers")
        net.allow("users", "users")
        for site_index in range(profile.num_sites):
            users = []
            servers = []
            for index in range(profile.users_per_site):
                endpoint = net.create_endpoint(
                    "s%d-user-%d" % (site_index, index), "users", self.VN_ID,
                    sink=self._sink)
                self._site_of[endpoint.identity] = site_index
                net.admit(endpoint, site_index,
                          index % profile.edges_per_site)
                users.append(endpoint)
            for index in range(profile.servers_per_site):
                endpoint = net.create_endpoint(
                    "s%d-srv-%d" % (site_index, index), "servers", self.VN_ID,
                    sink=self._sink)
                self._site_of[endpoint.identity] = site_index
                net.admit(endpoint, site_index,
                          index % profile.edges_per_site)
                servers.append(endpoint)
            self.users.append(users)
            self.servers.append(servers)
        net.settle(max_time=300.0)
        self._popularity = [
            PopularityModel(bucket, self._traffic_rng, skew=1.1)
            for bucket in self.servers
        ]

    # ------------------------------------------------------------------ traffic
    def _sink(self, endpoint, packet, now):
        sent_at = packet.meta.get("sent_at")
        if sent_at is None:
            return
        if packet.meta.get("inter_site"):
            self.inter_delays.append(now - sent_at)
        else:
            self.intra_delays.append(now - sent_at)

    def _fire_flow(self, endpoint):
        if not endpoint.attached or not endpoint.onboarded:
            return
        profile = self.profile
        home = self._site_of[endpoint.identity]
        cross = (profile.num_sites > 1
                 and self._traffic_rng.random() < profile.inter_site_fraction)
        if cross:
            choices = [i for i in range(profile.num_sites) if i != home]
            target_site = self._traffic_rng.choice(choices)
        else:
            target_site = home
        target = self._popularity[target_site].pick()
        if target is endpoint or target.ip is None:
            return
        packet = self.net.send(endpoint, target.ip, size=600)
        packet.meta["sent_at"] = self.net.sim.now
        packet.meta["inter_site"] = cross

    def _rate(self):
        return 1.0 / self.profile.flow_interval_s

    # ------------------------------------------------------------------ run
    def run(self, duration_s=60.0):
        """Steady traffic for ``duration_s``, with mid-run cross-site roams."""
        net = self.net
        profile = self.profile
        sim = net.sim

        for bucket in self.users:
            for endpoint in bucket:
                generator = FlowGenerator(sim, endpoint, self._rate,
                                          self._fire_flow, self._traffic_rng)
                generator.start()
                self._generators.append(generator)

        # Travelling staff: roam out in the first half, home in the second.
        start = sim.now
        for site_index, bucket in enumerate(self.users):
            for endpoint in bucket:
                if self._roam_rng.random() >= profile.roaming_fraction:
                    continue
                choices = [i for i in range(profile.num_sites) if i != site_index]
                away_site = self._roam_rng.choice(choices)
                out_at = start + self._roam_rng.uniform(0.1, duration_s * 0.4)
                back_at = start + self._roam_rng.uniform(duration_s * 0.6,
                                                         duration_s * 0.9)
                sim.schedule_at(out_at, self._roam, endpoint, away_site)
                sim.schedule_at(back_at, self._roam, endpoint, site_index)

        sim.run(until=start + duration_s)
        for generator in self._generators:
            generator.stop()
        net.settle(max_time=120.0)
        return self.summarize()

    def _roam(self, endpoint, site_index):
        if not endpoint.attached:
            return
        edge = self._roam_rng.randint(0, self.profile.edges_per_site - 1)
        self.net.roam(endpoint, site_index, edge)

    # ------------------------------------------------------------------ reporting
    def summarize(self):
        net = self.net
        sent = sum(g.flows_fired for g in self._generators)
        delivered = len(self.intra_delays) + len(self.inter_delays)
        transit_records = list(net.transit.database.records())

        def mean(values):
            return sum(values) / len(values) if values else None

        return {
            "flows_fired": sent,
            "delivered": delivered,
            "intra_flows": len(self.intra_delays),
            "inter_flows": len(self.inter_delays),
            "intra_mean_delay_s": mean(self.intra_delays),
            "inter_mean_delay_s": mean(self.inter_delays),
            "transit_messages": net.transit_message_count(),
            "transit_aggregates": len(transit_records),
            "transit_has_host_state": any(r.eid.is_host for r in transit_records),
            "away_endpoints": sum(b.away_count() for b in net.transit_borders),
        }
