"""Campus workload: the buildings A/B presence + traffic model.

Reproduces the environment of the fig. 9 / table 5 study:

* **Mobile users** arrive around 9:00 and leave around 19:00 on weekdays
  (truncated-normal jitter), taking their laptops/phones with them —
  their departure *deregisters* the endpoint, so the border's synced FIB
  follows office presence.
* **Desktops** stay attached around the clock; their users generate
  traffic only during work hours, plus a light background rate (backup
  jobs, update checks) at night.
* **IoT devices** (VoIP phones, cameras) stay attached and chat at a low
  constant rate day and night — the paper singles these out to explain
  building B's large nighttime border FIB.

Traffic concentrates on a few server endpoints (Zipf) with a configurable
fraction of peer-to-peer flows; nighttime flows towards *departed* mobile
endpoints produce negative resolutions, which is exactly the mechanism the
paper offers for building B's nightly edge-cache cleanup.

A ``time_scale`` knob compresses macro time (day length, cache TTLs,
flow gaps) without touching control-plane latencies, so CI-friendly runs
keep the same cache dynamics in fewer simulated events.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.fabric.network import FabricConfig, FabricNetwork
from repro.sim.rng import SeededRng
from repro.stats.summaries import TimeSeries
from repro.workloads.traffic import FlowGenerator, PopularityModel

DAY_S = 86400.0
HOUR_S = 3600.0
WEEK_DAYS = 7
WORK_DAYS = 5


class CampusProfile:
    """Deployment shape + endpoint mix for one building (table 4)."""

    def __init__(self, name, num_borders, num_edges, mobile, desktops, iot,
                 servers=6, arrival_hour=9.0, departure_hour=19.0,
                 presence_jitter_h=0.75, attendance=0.55, affinity_k=2,
                 peer_skew=1.2, cache_ttl_h=12.0, server_fraction=0.8):
        self.name = name
        self.num_borders = num_borders
        self.num_edges = num_edges
        self.mobile = mobile
        self.desktops = desktops
        self.iot = iot
        self.servers = servers
        self.arrival_hour = arrival_hour
        self.departure_hour = departure_hour
        self.presence_jitter_h = presence_jitter_h
        #: probability a mobile user shows up on a given workday — border
        #: FIB daytime levels track attendance, not the nominal population
        self.attendance = attendance
        #: size of each endpoint's peer-affinity set (who it talks to
        #: besides servers); small and popularity-skewed, which is what
        #: keeps edge map-caches far below the endpoint population
        self.affinity_k = affinity_k
        self.peer_skew = peer_skew
        #: edge map-cache TTL in hours — fig. 9 shows building A's edges
        #: retaining routes between workdays (long TTL, cleared over the
        #: weekend) while building B's follow the day/night routine
        self.cache_ttl_h = cache_ttl_h
        #: fraction of flows aimed at servers (the rest go to affinity
        #: peers); lower means more peer-to-peer and fuller edge caches
        self.server_fraction = server_fraction

    @property
    def total_endpoints(self):
        return self.mobile + self.desktops + self.iot + self.servers

    def __repr__(self):
        return "CampusProfile(%s, %d endpoints, %d edges, %d borders)" % (
            self.name, self.total_endpoints, self.num_edges, self.num_borders
        )


#: Building A (table 4): 1 border, 7 edges, ~150 endpoints, mostly mobile
#: users with a small always-on population (table 5: night FIB ~19).
BUILDING_A = CampusProfile("building-A", num_borders=1, num_edges=7,
                           mobile=131, desktops=10, iot=5, servers=4,
                           attendance=0.5, affinity_k=18, peer_skew=0.3,
                           cache_ttl_h=40.0, server_fraction=0.5)

#: Building B (table 4): 2 borders, 6 edges, ~450 endpoints with a large
#: always-connected population (desktops + IoT) — sec. 4.2 singles this
#: out to explain B's nighttime border FIB of ~227 (table 5).
BUILDING_B = CampusProfile("building-B", num_borders=2, num_edges=6,
                           mobile=222, desktops=150, iot=70, servers=8,
                           attendance=0.6, affinity_k=3, peer_skew=1.0,
                           cache_ttl_h=14.0, server_fraction=0.8)


class CampusWorkload:
    """Drives a fabric through weeks of campus life, sampling FIB state."""

    VN_ID = 4098

    def __init__(self, profile, seed=1, time_scale=1.0,
                 day_flow_interval_s=900.0, night_flow_interval_s=7200.0,
                 iot_flow_interval_s=3600.0, server_fraction=None,
                 roams_per_user_day=0.5, sample_interval_h=1.0,
                 megaflow=False, packet_trains=False, packets_per_flow=1):
        if time_scale <= 0:
            raise ConfigurationError("time_scale must be positive")
        self.profile = profile
        self.seed = seed
        self.scale = time_scale
        self.day_s = DAY_S / time_scale
        self.hour_s = HOUR_S / time_scale
        self.day_rate = time_scale / day_flow_interval_s
        self.night_rate = time_scale / night_flow_interval_s
        self.iot_rate = time_scale / iot_flow_interval_s
        self.server_fraction = (
            profile.server_fraction if server_fraction is None else server_fraction
        )
        self.roams_per_user_day = roams_per_user_day
        self.sample_interval_s = sample_interval_h * self.hour_s
        #: data-plane fast path knobs (default off; the FIB dynamics the
        #: fig. 9 study measures are identical either way — the property
        #: test holds the workload to that)
        self.megaflow = megaflow
        self.packet_trains = packet_trains
        self.packets_per_flow = packets_per_flow

        self.rng = SeededRng(seed)
        self._presence_rng = self.rng.spawn("presence")
        self._traffic_rng = self.rng.spawn("traffic")
        self._roam_rng = self.rng.spawn("roam")

        self.fabric = FabricNetwork(FabricConfig(
            num_borders=profile.num_borders,
            num_edges=profile.num_edges,
            map_cache_ttl=profile.cache_ttl_h * HOUR_S / time_scale,
            negative_ttl=60.0 / time_scale,
            seed=seed,
            megaflow=megaflow,
        ))
        self._build_population()

        #: Time series of mean FIB entries (fig. 9's two curves).
        self.border_series = TimeSeries()
        self.edge_series = TimeSeries()
        self._samples_scheduled = False

    # ------------------------------------------------------------------ population
    def _build_population(self):
        fabric = self.fabric
        profile = self.profile
        fabric.define_vn("campus", self.VN_ID, "10.64.0.0/14")
        fabric.define_group("users", 10, self.VN_ID)
        fabric.define_group("devices", 20, self.VN_ID)
        fabric.define_group("servers", 30, self.VN_ID)
        fabric.allow("users", "servers")
        fabric.allow("devices", "servers")
        fabric.allow("users", "devices")

        self.mobile = []
        self.desktops = []
        self.iot = []
        self.servers = []
        self._home_edge = {}
        self._flow_generators = {}

        def make(prefix, count, group, bucket):
            for index in range(count):
                identity = "%s-%s-%d" % (profile.name, prefix, index)
                endpoint = fabric.create_endpoint(identity, group, self.VN_ID)
                bucket.append(endpoint)
                self._home_edge[identity] = self._presence_rng.randint(
                    0, profile.num_edges - 1
                )

        make("user", profile.mobile, "users", self.mobile)
        make("desk", profile.desktops, "users", self.desktops)
        make("iot", profile.iot, "devices", self.iot)
        make("srv", profile.servers, "servers", self.servers)

        self._server_popularity = PopularityModel(
            self.servers, self._traffic_rng, skew=1.1
        )
        self._all_non_server = self.mobile + self.desktops + self.iot
        # Peer-affinity sets: each endpoint repeatedly talks to the same
        # few (popularity-skewed) peers.  This locality is what keeps edge
        # map-caches small relative to the population — the mechanism
        # behind table 5's edge-vs-border numbers.
        peer_popularity = PopularityModel(
            self._all_non_server, self._traffic_rng, skew=profile.peer_skew
        )
        self._affinity = {}
        for endpoint in self._all_non_server:
            peers = []
            guard = 0
            while len(peers) < profile.affinity_k and guard < 50:
                guard += 1
                candidate = peer_popularity.pick()
                if candidate is not endpoint and candidate not in peers:
                    peers.append(candidate)
            self._affinity[endpoint.identity] = peers

    # ------------------------------------------------------------------ presence
    def _admit_home(self, endpoint):
        if endpoint.attached:
            return
        edge_index = self._home_edge[endpoint.identity]
        self.fabric.admit(endpoint, edge_index,
                          on_complete=self._on_admitted)

    def _on_admitted(self, endpoint, accepted):
        if accepted:
            generator = self._flow_generators.get(endpoint.identity)
            if generator is not None:
                generator.start()

    def _depart(self, endpoint):
        generator = self._flow_generators.get(endpoint.identity)
        if generator is not None:
            generator.stop()
        if endpoint.attached:
            self.fabric.depart(endpoint)

    def _schedule_day(self, day_index):
        """Queue arrivals/departures/roams for one (scaled) day."""
        weekday = day_index % WEEK_DAYS < WORK_DAYS
        base = day_index * self.day_s
        sim = self.fabric.sim
        profile = self.profile
        if not weekday:
            return
        for endpoint in self.mobile:
            if self._presence_rng.random() >= profile.attendance:
                continue   # not in the office today
            arrival_h = self._presence_rng.truncated_gauss(
                profile.arrival_hour, profile.presence_jitter_h, 6.0, 12.0
            )
            departure_h = self._presence_rng.truncated_gauss(
                profile.departure_hour, profile.presence_jitter_h, 15.0, 23.0
            )
            sim.schedule_at(base + arrival_h * self.hour_s, self._admit_home, endpoint)
            sim.schedule_at(base + departure_h * self.hour_s, self._depart, endpoint)
            # Mid-day roams between edges (meeting rooms, cafeteria).
            roams = self._roam_rng.random() < self.roams_per_user_day
            if roams and profile.num_edges > 1:
                roam_h = self._roam_rng.uniform(arrival_h + 0.5, departure_h - 0.5)
                sim.schedule_at(base + roam_h * self.hour_s, self._roam, endpoint)

    def _roam(self, endpoint):
        if not endpoint.attached:
            return
        current = self.fabric.edges.index(endpoint.edge)
        choices = [i for i in range(self.profile.num_edges) if i != current]
        self.fabric.roam(endpoint, self._roam_rng.choice(choices))

    # ------------------------------------------------------------------ traffic
    def _hour_of_day(self):
        return (self.fabric.sim.now % self.day_s) / self.hour_s

    def _is_work_hour(self):
        hour = self._hour_of_day()
        day = int(self.fabric.sim.now // self.day_s) % WEEK_DAYS
        return day < WORK_DAYS and 9.0 <= hour < 19.0

    def _user_rate(self):
        return self.day_rate if self._is_work_hour() else self.night_rate

    def _iot_rate(self):
        return self.iot_rate

    def _fire_flow(self, endpoint, count=1):
        if not endpoint.attached or not endpoint.onboarded:
            return
        if self._traffic_rng.random() < self.server_fraction:
            target = self._server_popularity.pick()
        else:
            peers = self._affinity.get(endpoint.identity)
            if not peers:
                return
            target = self._traffic_rng.choice(peers)
        if target is endpoint or target.ip is None:
            return
        self.fabric.send(endpoint, target.ip, size=600, count=count,
                         as_train=self.packet_trains)

    def _install_flow_generators(self):
        sim = self.fabric.sim
        for endpoint in self.mobile + self.desktops:
            self._flow_generators[endpoint.identity] = FlowGenerator(
                sim, endpoint, self._user_rate, self._fire_flow,
                self._traffic_rng,
                packets_per_flow=self.packets_per_flow,
            )
        for endpoint in self.iot:
            self._flow_generators[endpoint.identity] = FlowGenerator(
                sim, endpoint, self._iot_rate, self._fire_flow,
                self._traffic_rng,
                packets_per_flow=self.packets_per_flow,
            )

    # ------------------------------------------------------------------ sampling
    def _sample(self):
        snapshot = self.fabric.fib_snapshot()
        borders = list(snapshot["border"].values())
        edges = list(snapshot["edge"].values())
        now = self.fabric.sim.now
        self.border_series.append(now, sum(borders) / len(borders))
        self.edge_series.append(now, sum(edges) / len(edges))

    def _schedule_sampling(self, until):
        sim = self.fabric.sim
        t = self.sample_interval_s
        while t <= until:
            sim.schedule_at(t, self._sample)
            t += self.sample_interval_s

    # ------------------------------------------------------------------ main entry
    def run(self, weeks=1):
        """Simulate ``weeks`` of campus life; returns (border, edge) series."""
        total = weeks * WEEK_DAYS * self.day_s
        fabric = self.fabric

        # Always-on population comes up first.
        for endpoint in self.desktops + self.iot + self.servers:
            self._admit_home(endpoint)
        fabric.settle()

        self._install_flow_generators()
        for endpoint in self.desktops + self.iot:
            self._flow_generators[endpoint.identity].start()

        for day in range(weeks * WEEK_DAYS):
            self._schedule_day(day)
        self._schedule_sampling(total)

        fabric.sim.run(until=total)
        for generator in self._flow_generators.values():
            generator.stop()
        return self.border_series, self.edge_series

    # ------------------------------------------------------------------ table 5 summary
    def summarize(self):
        """Table 5 rows: all/day/night mean FIB for border and edge."""
        def is_day(t):
            day = int(t // self.day_s) % WEEK_DAYS
            hour = (t % self.day_s) / self.hour_s
            return day < WORK_DAYS and 9.0 <= hour < 19.0

        def is_night(t):
            return not is_day(t)

        rows = {}
        for label, series in (("border", self.border_series), ("edge", self.edge_series)):
            rows[label] = {
                "all": series.overall_mean(),
                "day": series.mean_where(is_day),
                "night": series.mean_where(is_night),
            }
        border_all = rows["border"]["all"] or 0.0
        edge_all = rows["edge"]["all"] or 0.0
        rows["decrease_all"] = (
            (1.0 - edge_all / border_all) if border_all else 0.0
        )
        return rows
