"""Distributed wireless campus: stations roaming *between* fabric sites.

The composition workload of the two flagship subsystems: every site of a
multi-site federation carries a wireless overlay (per-site WLC + APs on
every edge), wired servers host Zipf-skewed flows, and the station
population walks — mostly between APs of the site it is currently in,
but a configurable fraction of moves crosses the transit (travelling
staff drifting between campuses).  Each cross-site move composes the
WLC re-registration path with the away-table home anchoring, which is
exactly the machinery the inter-site property test and roaming bench
stress.

Two usage modes mirror :mod:`repro.workloads.wireless_campus`:

* :meth:`DistributedWirelessCampusWorkload.run` — steady-state mobility
  with traffic overlapping the roams (the determinism lane's digest
  input);
* :meth:`DistributedWirelessCampusWorkload.intersite_roam_storm` —
  every station crosses sites inside a short window, with traffic held
  off so the fast-path flag settings can be compared counter-for-counter
  (the intersite bench's scenario).
"""

from __future__ import annotations

import hashlib
import json

from repro.core.errors import ConfigurationError
from repro.multisite.network import MultiSiteConfig, MultiSiteNetwork
from repro.sim.rng import SeededRng
from repro.stats.summaries import boxplot
from repro.wireless.deployment import MultiSiteWireless, WirelessConfig
from repro.workloads.traffic import FlowGenerator, PopularityModel


class DistributedWirelessCampusProfile:
    """Federation shape + wireless population + mobility/traffic mix."""

    def __init__(self, name="dw-campus", num_sites=2, edges_per_site=3,
                 aps_per_edge=2, stations_per_site=8, servers_per_site=2,
                 dwell_mean_s=30.0, intersite_roam_fraction=0.3,
                 flow_interval_s=5.0, inter_site_flow_fraction=0.3,
                 zipf_skew=1.1, wlc_service_s=150e-6,
                 transit_delay_s=2e-3,
                 batching=False, register_flush_s=2e-3,
                 session_cache=False, session_cache_ttl_s=600.0,
                 megaflow=False, packet_trains=False, packets_per_flow=1):
        if num_sites < 2:
            raise ConfigurationError(
                "a distributed wireless campus needs at least two sites"
            )
        if stations_per_site < 1:
            raise ConfigurationError("each site needs stations")
        self.name = name
        self.num_sites = num_sites
        self.edges_per_site = edges_per_site
        self.aps_per_edge = aps_per_edge
        self.stations_per_site = stations_per_site
        self.servers_per_site = servers_per_site
        #: mean time a station camps on one AP before walking on
        self.dwell_mean_s = dwell_mean_s
        #: fraction of walk steps that target an AP in *another* site
        self.intersite_roam_fraction = intersite_roam_fraction
        self.flow_interval_s = flow_interval_s
        #: fraction of flows aimed at a remote site's servers
        self.inter_site_flow_fraction = inter_site_flow_fraction
        self.zipf_skew = zipf_skew
        self.wlc_service_s = wlc_service_s
        self.transit_delay_s = transit_delay_s
        #: control-plane fast path knobs (replicated into every site)
        self.batching = batching
        self.register_flush_s = register_flush_s
        self.session_cache = session_cache
        self.session_cache_ttl_s = session_cache_ttl_s
        #: data-plane fast path knobs
        self.megaflow = megaflow
        self.packet_trains = packet_trains
        self.packets_per_flow = packets_per_flow

    @property
    def aps_per_site(self):
        return self.edges_per_site * self.aps_per_edge

    @property
    def num_aps(self):
        return self.num_sites * self.aps_per_site


class DistributedWirelessCampusWorkload:
    """Drives a MultiSiteWireless through cross-site mobility + traffic."""

    VN_ID = 4101

    def __init__(self, profile=None, seed=5):
        self.profile = profile or DistributedWirelessCampusProfile()
        profile = self.profile
        self.rng = SeededRng(seed)
        self._walk_rng = self.rng.spawn("walk")
        self._traffic_rng = self.rng.spawn("traffic")

        self.net = MultiSiteNetwork(MultiSiteConfig(
            num_sites=profile.num_sites,
            edges_per_site=profile.edges_per_site,
            transit_delay_s=profile.transit_delay_s,
            seed=seed,
            megaflow=profile.megaflow,
            batching=profile.batching,
            register_flush_s=profile.register_flush_s,
            session_cache=profile.session_cache,
            session_cache_ttl_s=profile.session_cache_ttl_s,
        ))
        self.wireless = MultiSiteWireless(self.net, WirelessConfig(
            aps_per_edge=profile.aps_per_edge,
            wlc_service_s=profile.wlc_service_s,
            batching=profile.batching,
            register_flush_s=profile.register_flush_s,
        ))
        self._build_population()
        self._walking = False

    # ------------------------------------------------------------------ population
    def _build_population(self):
        net = self.net
        profile = self.profile
        net.define_vn("wifi", self.VN_ID, "10.160.0.0/13")
        net.define_group("stations", 10, self.VN_ID)
        net.define_group("servers", 30, self.VN_ID)
        net.allow("stations", "servers")

        self.servers = []        # per site: list of wired servers
        self.stations = []       # flat list, site-major
        self._home_site = {}     # identity -> home site index
        for site_index in range(profile.num_sites):
            bucket = []
            for index in range(profile.servers_per_site):
                server = net.create_endpoint(
                    "%s-s%d-srv-%d" % (profile.name, site_index, index),
                    "servers", self.VN_ID,
                )
                net.admit(server, site_index, index % profile.edges_per_site)
                bucket.append(server)
            self.servers.append(bucket)
            for index in range(profile.stations_per_site):
                station = self.wireless.create_station(
                    "%s-s%d-sta-%d" % (profile.name, site_index, index),
                    "stations", self.VN_ID,
                )
                self._home_site[station.identity] = site_index
                self.stations.append(station)

        self._popularity = [
            PopularityModel(bucket, self._traffic_rng, skew=profile.zipf_skew)
            for bucket in self.servers
        ]
        self._generators = {}

    # ------------------------------------------------------------------ bring-up
    def bring_up(self):
        """Associate every station to a home-site AP and settle fully."""
        profile = self.profile
        self.net.settle(max_time=300.0)
        for index, station in enumerate(self.stations):
            home = self._home_site[station.identity]
            ap = (home * profile.aps_per_site
                  + index % profile.aps_per_site)
            self.wireless.associate(station, ap,
                                    on_complete=self._on_onboarded)
        self.net.settle(max_time=300.0)

    def _on_onboarded(self, station, accepted):
        if not accepted:
            return
        generator = self._generators.get(station.identity)
        if generator is not None:
            generator.start()

    def _install_generators(self):
        rate = 1.0 / self.profile.flow_interval_s
        for station in self.stations:
            self._generators[station.identity] = FlowGenerator(
                self.net.sim, station, lambda: rate, self._fire_flow,
                self._traffic_rng,
                packets_per_flow=self.profile.packets_per_flow,
            )
            if station.associated and station.onboarded:
                self._generators[station.identity].start()

    def _fire_flow(self, station, count=1):
        if not station.associated or not station.onboarded:
            return
        profile = self.profile
        current = self.wireless.site_of_ap(station.ap)
        cross = self._traffic_rng.random() < profile.inter_site_flow_fraction
        if cross:
            choices = [i for i in range(profile.num_sites) if i != current]
            target_site = self._traffic_rng.choice(choices)
        else:
            target_site = current
        target = self._popularity[target_site].pick()
        if target.ip is None:
            return
        self.net.send(station, target.ip, size=600, count=count,
                      as_train=profile.packet_trains)

    # ------------------------------------------------------------------ mobility
    def _pick_ap(self, station):
        """Next AP for a walk step: same-site neighbour or a cross-site
        move with probability ``intersite_roam_fraction``."""
        profile = self.profile
        current_site = self.wireless.site_of_ap(station.ap)
        current = self.wireless.ap_index(station.ap)
        if self._walk_rng.random() < profile.intersite_roam_fraction:
            sites = [i for i in range(profile.num_sites) if i != current_site]
            site = self._walk_rng.choice(sites)
        else:
            site = current_site
        base = site * profile.aps_per_site
        choices = [base + i for i in range(profile.aps_per_site)
                   if base + i != current]
        return self._walk_rng.choice(choices)

    def _walk_step(self, station):
        if not self._walking:
            return
        if station.associated:
            self.wireless.roam(station, self._pick_ap(station))
        self.net.sim.schedule(
            self._walk_rng.expovariate(1.0 / self.profile.dwell_mean_s),
            self._walk_step, station,
        )

    def _start_walks(self):
        self._walking = True
        for station in self.stations:
            self.net.sim.schedule(
                self._walk_rng.expovariate(1.0 / self.profile.dwell_mean_s),
                self._walk_step, station,
            )

    # ------------------------------------------------------------------ entry points
    def run(self, duration_s=120.0):
        """Steady-state walk + traffic; returns the summary dict."""
        self.bring_up()
        self._install_generators()
        self._start_walks()
        self.net.sim.run(until=self.net.sim.now + duration_s)
        self._walking = False
        for generator in self._generators.values():
            generator.stop()
        self.net.settle(max_time=300.0)
        return self.summarize()

    def intersite_roam_storm(self, window_s=1.0, settle_s=30.0):
        """Every station crosses to another site inside ``window_s``.

        Traffic is held off so the storm's control-plane work — WLC
        handoffs, foreign re-registrations, away anchoring — is the only
        thing happening; the returned summary carries the completion
        makespan (``sustained_roams_per_s``) the bench tracks.
        """
        if not any(s.associated for s in self.stations):
            self.bring_up()
        sim = self.net.sim
        start = sim.now
        completions = [0]
        last_completion = [start]
        delays = []

        def _note(station, delay):
            completions[0] += 1
            last_completion[0] = sim.now
            delays.append(delay)

        for wlc in self.wireless.wlcs:
            wlc.on_registered = _note
        for station in self.stations:
            at = sim.now + self._walk_rng.uniform(0.0, window_s)
            sim.schedule_at(at, self._storm_move, station)
        sim.run(until=start + window_s + settle_s)
        self.net.settle(max_time=300.0)
        for wlc in self.wireless.wlcs:
            wlc.on_registered = None
        summary = self.summarize()
        makespan = max(last_completion[0] - start, 1e-9)
        summary["storm_window_s"] = window_s
        summary["storm_makespan_s"] = makespan
        summary["storm_completions"] = completions[0]
        summary["sustained_roams_per_s"] = completions[0] / makespan
        if delays:
            ordered = sorted(delays)
            summary["roam_delay_p50_s"] = ordered[len(ordered) // 2]
            summary["roam_delay_p99_s"] = ordered[
                min(len(ordered) - 1, int(len(ordered) * 0.99))
            ]
        return summary

    def _storm_move(self, station):
        if not station.associated:
            return
        profile = self.profile
        current_site = self.wireless.site_of_ap(station.ap)
        sites = [i for i in range(profile.num_sites) if i != current_site]
        site = self._walk_rng.choice(sites)
        base = site * profile.aps_per_site
        self.wireless.roam(
            station, base + self._walk_rng.randint(0, profile.aps_per_site - 1)
        )

    # ------------------------------------------------------------------ reporting
    def summarize(self):
        net = self.net
        wlcs = self.wireless.wlcs
        roams = sum(w.stats.roams for w in wlcs)
        intra_edge = sum(w.stats.intra_edge_roams for w in wlcs)
        handoffs = sum(w.stats.handoffs_out for w in wlcs)
        delays = [d for w in wlcs for d in w.registration_delays]
        summary = {
            "stations": len(self.stations),
            "associated": sum(1 for s in self.stations if s.associated),
            "roams": roams,
            "intra_edge_roams": intra_edge,
            "inter_edge_roams": roams - intra_edge,
            "intersite_handoffs": handoffs,
            "away_endpoints": sum(b.away_count()
                                  for b in net.transit_borders),
            "transit_messages": net.transit_message_count(),
            "transit_has_host_state": bool(net.transit.host_routes()),
            "flows_fired": sum(g.flows_fired
                               for g in self._generators.values()),
            "server_packets_received": sum(
                srv.packets_received
                for bucket in self.servers for srv in bucket
            ),
            "station_packets_delivered": sum(
                ap.counters.packets_delivered for ap in self.wireless.aps
            ),
            "policy_drops": net.total_policy_drops(),
            "wlc_max_queue_s": max(w.max_queue_delay_s for w in wlcs),
        }
        if delays:
            box = boxplot(delays)
            summary["registration_delay_median_s"] = box.median
            summary["registration_delay_max_s"] = max(delays)
        return summary

    def counter_ledger(self):
        """Every delivery/drop/enforcement counter, deterministically keyed.

        This is the bit-identity surface: the fast-path flag matrix
        (batching x session_cache x megaflow x packet_trains) must leave
        each of these values untouched, and two runs of the same seed
        under different ``PYTHONHASHSEED`` values must agree exactly
        (the CI determinism lane hashes this via :meth:`digest`).
        """
        net = self.net
        ledger = {}
        for site_index, site in enumerate(net.sites):
            for edge in site.edges:
                prefix = "site%d.%s" % (site_index, edge.name)
                counters = edge.counters.as_dict()
                for key in ("packets_in", "local_deliveries", "encapsulated",
                            "to_border_default", "policy_drops",
                            "stale_deliveries", "ttl_drops", "wireless_in"):
                    ledger["%s.%s" % (prefix, key)] = counters[key]
                ledger["%s.acl_hits" % prefix] = edge.acl.hits
                ledger["%s.acl_drops" % prefix] = edge.acl.drops
            for border in site.borders:
                prefix = "site%d.%s" % (site_index, border.name)
                counters = border.counters.as_dict()
                for key in ("packets_in", "relayed_to_edge", "no_route_drops",
                            "policy_drops", "ttl_drops", "transit_in",
                            "transit_reencapsulated", "transit_drops"):
                    ledger["%s.%s" % (prefix, key)] = counters[key]
        for site_index, wlc in enumerate(self.wireless.wlcs):
            stats = wlc.stats.as_dict()
            for key in ("associations", "roams", "intra_edge_roams",
                        "disassociations", "handoffs_out",
                        "registrar_acks_received"):
                ledger["wlc%d.%s" % (site_index, key)] = stats[key]
        for index, ap in enumerate(self.wireless.aps):
            ledger["ap%d.encapsulated" % index] = (
                ap.counters.packets_encapsulated
            )
            ledger["ap%d.delivered" % index] = ap.counters.packets_delivered
        for bucket in self.servers:
            for server in bucket:
                ledger["%s.received" % server.identity] = (
                    server.packets_received
                )
        for station in self.stations:
            ledger["%s.sent" % station.identity] = station.packets_sent
            ledger["%s.received" % station.identity] = (
                station.packets_received
            )
        ledger["away_endpoints"] = sum(
            b.away_count() for b in net.transit_borders
        )
        return ledger

    def digest(self):
        """Stable hex digest of the counter ledger (determinism lane)."""
        payload = json.dumps(self.counter_ledger(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
