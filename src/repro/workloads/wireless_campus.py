"""Wireless campus workload: stations walking across APs under traffic.

The mobility half of the campus story: laptops and phones drift between
meeting rooms, cafeterias and desks all day, so the wireless fabric sees
a continuous trickle of AP-to-AP roams — many of them crossing edges —
while the stations keep Zipf-skewed flows running towards a few wired
servers (the same :class:`FlowGenerator` / :class:`PopularityModel`
machinery the wired campus uses).

Two usage modes:

* :meth:`WirelessCampusWorkload.run` — steady-state mobility: every
  station performs an exponential dwell-then-roam walk for the given
  duration.  Summarizes roam mix (intra- vs inter-edge), registration
  delays, and data-plane health.
* :meth:`WirelessCampusWorkload.roam_storm` — everyone moves inside a
  short window (fire-drill / lecture-change) — the WLC control-queue
  stress test behind the roam-storm scaling bench.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.fabric.network import FabricConfig, FabricNetwork
from repro.sim.rng import SeededRng
from repro.stats.summaries import boxplot
from repro.wireless.deployment import WirelessConfig, WirelessFabric
from repro.workloads.traffic import FlowGenerator, PopularityModel


class WirelessCampusProfile:
    """Deployment shape + station mix for a wireless building."""

    def __init__(self, name="wireless-campus", num_edges=6, aps_per_edge=2,
                 stations=40, servers=4, dwell_mean_s=60.0,
                 flow_interval_s=5.0, zipf_skew=1.1, wlc_service_s=150e-6,
                 batching=False, register_flush_s=2e-3,
                 session_cache=False, session_cache_ttl_s=600.0,
                 megaflow=False, packet_trains=False, packets_per_flow=1):
        if stations < 1:
            raise ConfigurationError("a wireless campus needs stations")
        self.name = name
        self.num_edges = num_edges
        self.aps_per_edge = aps_per_edge
        self.stations = stations
        self.servers = servers
        #: mean time a station camps on one AP before walking on
        self.dwell_mean_s = dwell_mean_s
        self.flow_interval_s = flow_interval_s
        self.zipf_skew = zipf_skew
        self.wlc_service_s = wlc_service_s
        #: control-plane fast path knobs (the before/after sweep of the
        #: ctrl-plane bench toggles these)
        self.batching = batching
        self.register_flush_s = register_flush_s
        self.session_cache = session_cache
        self.session_cache_ttl_s = session_cache_ttl_s
        #: data-plane fast path knobs (the dataplane bench toggles
        #: these): megaflow caches on edges/borders/APs, and each flow
        #: injected as one ``packets_per_flow``-packet train instead of
        #: ``packets_per_flow`` separate packet events
        self.megaflow = megaflow
        self.packet_trains = packet_trains
        self.packets_per_flow = packets_per_flow

    @property
    def num_aps(self):
        return self.num_edges * self.aps_per_edge


class WirelessCampusWorkload:
    """Drives a wireless fabric through station mobility + traffic."""

    VN_ID = 4100

    def __init__(self, profile=None, seed=1):
        self.profile = profile or WirelessCampusProfile()
        profile = self.profile
        self.rng = SeededRng(seed)
        self._walk_rng = self.rng.spawn("walk")
        self._traffic_rng = self.rng.spawn("traffic")

        self.fabric = FabricNetwork(FabricConfig(
            num_borders=1, num_edges=profile.num_edges, seed=seed,
            batching=profile.batching,
            register_flush_s=profile.register_flush_s,
            session_cache=profile.session_cache,
            session_cache_ttl_s=profile.session_cache_ttl_s,
            megaflow=profile.megaflow,
        ))
        self.wireless = WirelessFabric(self.fabric, WirelessConfig(
            aps_per_edge=profile.aps_per_edge,
            wlc_service_s=profile.wlc_service_s,
            batching=profile.batching,
            register_flush_s=profile.register_flush_s,
        ))
        self._build_population()
        self._walking = False

    # ------------------------------------------------------------------ population
    def _build_population(self):
        fabric = self.fabric
        profile = self.profile
        fabric.define_vn("wifi", self.VN_ID, "10.96.0.0/14")
        fabric.define_group("stations", 10, self.VN_ID)
        fabric.define_group("servers", 30, self.VN_ID)
        fabric.allow("stations", "servers")

        self.servers = []
        for index in range(profile.servers):
            server = fabric.create_endpoint(
                "%s-srv-%d" % (profile.name, index), "servers", self.VN_ID,
            )
            self.servers.append(server)
        self.stations = []
        for index in range(profile.stations):
            station = self.wireless.create_station(
                "%s-sta-%d" % (profile.name, index), "stations", self.VN_ID,
            )
            self.stations.append(station)

        self._popularity = PopularityModel(
            self.servers, self._traffic_rng, skew=profile.zipf_skew,
        )
        self._generators = {}

    # ------------------------------------------------------------------ bring-up
    def bring_up(self):
        """Wire servers, associate every station to a home AP, settle."""
        fabric = self.fabric
        for index, server in enumerate(self.servers):
            fabric.admit(server, index % self.profile.num_edges)
        fabric.settle(max_time=120.0)
        for index, station in enumerate(self.stations):
            self.wireless.associate(
                station, index % self.profile.num_aps,
                on_complete=self._on_onboarded,
            )
        fabric.settle(max_time=120.0)

    def _on_onboarded(self, station, accepted):
        if not accepted:
            return
        generator = self._generators.get(station.identity)
        if generator is not None:
            generator.start()

    def _install_generators(self):
        rate = 1.0 / self.profile.flow_interval_s
        for station in self.stations:
            self._generators[station.identity] = FlowGenerator(
                self.fabric.sim, station, lambda: rate, self._fire_flow,
                self._traffic_rng,
                packets_per_flow=self.profile.packets_per_flow,
            )
            if station.associated and station.onboarded:
                self._generators[station.identity].start()

    def _fire_flow(self, station, count=1):
        if not station.associated or not station.onboarded:
            return
        target = self._popularity.pick()
        if target.ip is None:
            return
        self.fabric.send(station, target.ip, size=600, count=count,
                         as_train=self.profile.packet_trains)

    # ------------------------------------------------------------------ mobility
    def _other_ap(self, station):
        current = self.wireless.aps.index(station.ap)
        choices = [i for i in range(self.profile.num_aps) if i != current]
        return self._walk_rng.choice(choices)

    def _walk_step(self, station):
        if not self._walking:
            return
        if station.associated:
            self.wireless.roam(station, self._other_ap(station))
        self.fabric.sim.schedule(
            self._walk_rng.expovariate(1.0 / self.profile.dwell_mean_s),
            self._walk_step, station,
        )

    def _start_walks(self):
        self._walking = True
        for station in self.stations:
            self.fabric.sim.schedule(
                self._walk_rng.expovariate(1.0 / self.profile.dwell_mean_s),
                self._walk_step, station,
            )

    # ------------------------------------------------------------------ entry points
    def run(self, duration_s=300.0):
        """Steady-state walk + traffic; returns the summary dict."""
        self.bring_up()
        self._install_generators()
        self._start_walks()
        self.fabric.sim.run(until=self.fabric.sim.now + duration_s)
        self._walking = False
        for generator in self._generators.values():
            generator.stop()
        self.fabric.settle()
        return self.summarize()

    def roam_storm(self, window_s=1.0, settle_s=10.0):
        """Everyone roams once inside ``window_s`` (no background walk).

        Returns the summary; ``registration_delay`` percentiles show the
        WLC control-queue backlog the storm built, and
        ``sustained_roams_per_s`` is the storm's completion throughput —
        inter-edge roam completions divided by the time from storm start
        until the last registration ack landed (the makespan the
        control-plane serialization stretches).
        """
        if not any(s.associated for s in self.stations):
            self.bring_up()
        wlc = self.wireless.wlc
        wlc.registration_delays = []
        sim = self.fabric.sim
        start = sim.now
        last_completion = [start]
        previous_hook = wlc.on_registered

        def _note_completion(station, delay):
            last_completion[0] = sim.now
            if previous_hook is not None:
                previous_hook(station, delay)

        wlc.on_registered = _note_completion
        for station in self.stations:
            at = sim.now + self._walk_rng.uniform(0.0, window_s)
            sim.schedule_at(at, self._storm_move, station)
        sim.run(until=sim.now + window_s + settle_s)
        self.fabric.settle()
        wlc.on_registered = previous_hook
        summary = self.summarize()
        completions = len(wlc.registration_delays)
        makespan = max(last_completion[0] - start, 1e-9)
        summary["storm_window_s"] = window_s
        summary["storm_makespan_s"] = makespan
        summary["sustained_roams_per_s"] = completions / makespan
        return summary

    def _storm_move(self, station):
        if station.associated:
            self.wireless.roam(station, self._other_ap(station))

    # ------------------------------------------------------------------ reporting
    def summarize(self):
        wlc = self.wireless.wlc
        stats = wlc.stats
        delays = list(wlc.registration_delays)
        summary = {
            "stations": len(self.stations),
            "associated": sum(1 for s in self.stations if s.associated),
            "roams": stats.roams,
            "intra_edge_roams": stats.intra_edge_roams,
            "inter_edge_roams": stats.roams - stats.intra_edge_roams,
            "registers_sent": stats.registers_sent,
            "registrar_acks": stats.registrar_acks_received,
            "wlc_max_queue_s": wlc.max_queue_delay_s,
            "flows_fired": sum(
                g.flows_fired for g in self._generators.values()
            ),
            "server_packets_received": sum(
                server.packets_received for server in self.servers
            ),
            "station_packets_delivered": sum(
                ap.counters.packets_delivered for ap in self.wireless.aps
            ),
            "encapsulated_at_ap": sum(
                ap.counters.packets_encapsulated for ap in self.wireless.aps
            ),
        }
        if delays:
            box = boxplot(delays)
            ordered = sorted(delays)
            summary["registration_delay"] = {
                "count": box.count,
                "median_s": box.median,
                "p50_s": ordered[len(ordered) // 2],
                "p97_5_s": box.whisker_high,
                "p99_s": ordered[min(len(ordered) - 1,
                                     int(len(ordered) * 0.99))],
                "max_s": max(delays),
            }
        return summary
