"""Warehouse massive-mobility workload (fig. 10/11).

Recreates the paper's lab recreation of a robotic warehouse: a border
router with an embedded routing server, two "physical" edge routers the
16,000 emulated hosts roam between at 800 mobility events per second, and
~200 source edges sending unidirectional UDP towards the hosts.

Two runs share the scenario definition:

* :class:`WarehouseLispRun` — the SDA fabric (reactive).  A move costs a
  re-auth + Map-Register; the routing server Map-Notifies the *old* edge,
  which immediately redirects in-flight traffic; sources with stale
  mappings get data-triggered SMRs.  Only affected parties see messages.
* :class:`WarehouseBgpRun` — the proactive comparator.  A move makes the
  new edge advertise to a centralized route reflector, which pushes the
  update to *all* peers through a serialized control CPU; a source
  recovers only when its own position in that fan-out is reached (no
  old-edge redirect exists in a proactive setup).

Handover delay is measured as the paper defines it: from host detach
until its traffic is restored at the new edge.  A subset of hosts is
*monitored* (receives a steady packet stream and is moved on a fixed
rotation) while the rest provide background mobility load; this mirrors
the paper's traffic-generator instrumentation and keeps event counts
tractable at full scale.
"""

from __future__ import annotations

from repro.baselines.bgp import BgpPeer, BgpRouteReflector
from repro.core.types import VNId
from repro.fabric.network import FabricConfig, FabricNetwork
from repro.net.addresses import IPv4Address
from repro.net.packet import make_udp_packet
from repro.sim.rng import SeededRng
from repro.sim.simulator import Simulator
from repro.underlay.network import UnderlayNetwork
from repro.underlay.topology import Topology
from repro.stats.recorders import HandoverRecorder


class WarehouseScenario:
    """Parameters of the warehouse experiment (paper values by default)."""

    def __init__(self, num_source_edges=198, num_hosts=16000,
                 moves_per_second=800, monitored_hosts=100,
                 monitor_interval_s=2e-3, measure_duration_s=1.0,
                 warmup_s=0.2, detection_delay_s=0.5e-3,
                 auth_delay_s=0.5e-3, rr_per_peer_service_s=4e-6,
                 rr_batch_interval_s=20e-3, seed=3):
        self.num_source_edges = num_source_edges
        self.num_hosts = num_hosts
        self.moves_per_second = moves_per_second
        self.monitored_hosts = min(monitored_hosts, num_hosts)
        self.monitor_interval_s = monitor_interval_s
        self.measure_duration_s = measure_duration_s
        self.warmup_s = warmup_s
        self.detection_delay_s = detection_delay_s
        self.auth_delay_s = auth_delay_s
        self.rr_per_peer_service_s = rr_per_peer_service_s
        self.rr_batch_interval_s = rr_batch_interval_s
        self.seed = seed

    @classmethod
    def paper_scale(cls, **overrides):
        """The full table-3 scale: 200 edges, 16k hosts, 800 moves/s."""
        return cls(**overrides)

    @classmethod
    def ci_scale(cls, **overrides):
        """A fast variant preserving the control-plane utilization ratio.

        Scaling both movers and peers down quadratically deflates the
        reflector's load, so the CI profile keeps the peer count and
        trims hosts/duration instead.
        """
        params = dict(num_source_edges=198, num_hosts=2000,
                      moves_per_second=800, monitored_hosts=60,
                      measure_duration_s=0.5, warmup_s=0.15)
        params.update(overrides)
        return cls(**params)

    @property
    def total_edges(self):
        return self.num_source_edges + 2


class WarehouseLispRun:
    """The SDA/LISP side of fig. 11."""

    VN_ID = 77

    def __init__(self, scenario=None):
        self.scenario = scenario or WarehouseScenario()
        s = self.scenario
        self.fabric = FabricNetwork(FabricConfig(
            num_borders=1,
            num_edges=s.total_edges,
            use_igp=False,                      # reachability static here
            edge_detection_delay_s=s.detection_delay_s,
            register_families=("ipv4",),
            map_cache_ttl=3600.0,
            seed=s.seed,
        ))
        # Fast MAB-style auth for robots.
        self.fabric.policy_server.auth_service_s = s.auth_delay_s
        self.fabric.policy_server.service_jitter_s = s.auth_delay_s / 4.0
        self.recorder = HandoverRecorder()
        self.rng = SeededRng(s.seed)
        self.hosts = []
        self.sources = []
        self._monitored = []
        self._built = False

    # -- construction -----------------------------------------------------------
    def setup(self):
        s = self.scenario
        fabric = self.fabric
        fabric.define_vn("warehouse", self.VN_ID, "10.128.0.0/9")
        fabric.define_group("robots", 100, self.VN_ID)
        fabric.define_group("controllers", 101, self.VN_ID)
        fabric.allow("controllers", "robots")

        host_edges = fabric.edges[:2]
        for index in range(s.num_hosts):
            host = fabric.create_endpoint(
                "robot-%d" % index, "robots", self.VN_ID,
                sink=self._host_sink,
            )
            self.hosts.append(host)
            fabric.admit(host, host_edges[index % 2])
        for index in range(s.num_source_edges):
            source = fabric.create_endpoint(
                "controller-%d" % index, "controllers", self.VN_ID,
            )
            self.sources.append(source)
            fabric.admit(source, fabric.edges[2 + index])
        fabric.settle(max_time=120.0)

        self._monitored = self.hosts[:s.monitored_hosts]
        self._built = True

    def _host_sink(self, endpoint, packet, now):
        self.recorder.on_delivery(endpoint.identity, now)

    # -- traffic -------------------------------------------------------------------
    def _start_monitored_traffic(self):
        """Each monitored host gets a steady stream from one source."""
        s = self.scenario
        for index, host in enumerate(self._monitored):
            source = self.sources[index % len(self.sources)]
            self._schedule_stream(source, host, s.monitor_interval_s,
                                  offset=self.rng.uniform(0, s.monitor_interval_s))

    def _schedule_stream(self, source, host, interval, offset):
        sim = self.fabric.sim

        def tick():
            if host.ip is not None and source.attached:
                self.fabric.send(source, host.ip, size=1500)
            sim.schedule(interval, tick)

        sim.schedule(offset, tick)

    # -- mobility ---------------------------------------------------------------------
    def _move_host(self, host):
        fabric = self.fabric
        if not host.attached:
            return
        target = fabric.edges[1] if host.edge is fabric.edges[0] else fabric.edges[0]
        self.recorder.on_detach(host.identity, fabric.sim.now)
        fabric.roam(host, target)

    def _schedule_mobility(self, start, duration):
        """800 moves/s: monitored hosts rotate; the rest are background."""
        s = self.scenario
        sim = self.fabric.sim
        total_moves = int(s.moves_per_second * duration)
        monitored_period = max(
            len(self._monitored) / (s.moves_per_second * 0.5), 0.05
        )
        # Monitored hosts move on a rotation spanning monitored_period.
        monitored_moves = 0
        t = 0.0
        while t < duration:
            for index, host in enumerate(self._monitored):
                at = start + t + (index + 1) * monitored_period / (len(self._monitored) + 1)
                if at - start >= duration:
                    break
                sim.schedule_at(at, self._move_host, host)
                monitored_moves += 1
            t += monitored_period
        # Background movers fill the rest of the budget.
        background = [h for h in self.hosts if h not in set(self._monitored)]
        remaining = max(0, total_moves - monitored_moves)
        for _ in range(remaining):
            host = self.rng.choice(background)
            at = start + self.rng.uniform(0, duration)
            sim.schedule_at(at, self._move_host, host)

    # -- main entry -----------------------------------------------------------------------
    def run(self):
        """Execute the measurement; returns handover-delay samples (s)."""
        if not self._built:
            self.setup()
        s = self.scenario
        sim = self.fabric.sim
        self._start_monitored_traffic()
        # Mobility starts during warm-up so the control plane reaches its
        # steady-state backlog before samples count.
        self._schedule_mobility(sim.now, s.warmup_s + s.measure_duration_s)
        sim.run(until=sim.now + s.warmup_s)
        self.recorder.samples = []   # discard warm-up artifacts
        start = sim.now
        # Drain: run past the end so the last handovers complete.
        sim.run(until=start + s.measure_duration_s + 0.2)
        return list(self.recorder.samples)


class _BgpHostEdge:
    """A proactive host edge: local delivery + advertisement on attach."""

    def __init__(self, sim, name, rloc, node, underlay, reflector,
                 detection_delay_s, auth_delay_s, vn):
        self.sim = sim
        self.name = name
        self.rloc = rloc
        self.underlay = underlay
        self.reflector = reflector
        self.detection_delay_s = detection_delay_s
        self.auth_delay_s = auth_delay_s
        self.vn = vn
        self.hosts = {}     # overlay IP -> endpoint
        self.peer = BgpPeer(sim, name + "-peer", rloc, node, underlay, reflector)
        # The peer owns the underlay attachment; our delivery hook wraps it.
        self._peer_on_packet = None

    def install_delivery(self):
        """Route data packets to hosts, control packets to the BGP peer."""
        attachment = self.underlay._attachments[self.rloc]
        peer_deliver = attachment.deliver

        def deliver(packet):
            payload = packet.payload
            if payload is not None and getattr(payload, "kind", None) == "bgp-update":
                peer_deliver(packet)
                return
            inner = packet.inner_ip()
            if inner is None:
                return
            host = self.hosts.get(inner.dst)
            if host is not None:
                host.receive(packet, self.sim.now)

        attachment.deliver = deliver

    def attach_host(self, host, advertise=True):
        host.edge = self
        self.hosts[host.ip] = host
        if advertise:
            delay = self.detection_delay_s + self.auth_delay_s
            self.sim.schedule(delay, self._advertise_host, host)

    def _advertise_host(self, host):
        if self.hosts.get(host.ip) is host:
            self.peer.advertise(self.vn, host.ip.to_prefix())

    def detach_host(self, host):
        if self.hosts.get(host.ip) is host:
            del self.hosts[host.ip]
        if host.edge is self:
            host.edge = None

    def detach_endpoint(self, host, deregister=False):
        # FabricNetwork-compatible signature (unused in the BGP run).
        self.detach_host(host)


class WarehouseBgpRun:
    """The proactive side of fig. 11 (route reflector fan-out)."""

    VN_ID = 77

    def __init__(self, scenario=None):
        self.scenario = scenario or WarehouseScenario()
        s = self.scenario
        self.sim = Simulator()
        self.rng = SeededRng(s.seed + 1000)
        self.recorder = HandoverRecorder()

        self.topology, spines, leaves = Topology.two_tier(
            num_spines=2, num_leaves=s.total_edges
        )
        self.underlay = UnderlayNetwork(self.sim, self.topology,
                                        extra_delay_jitter_s=20e-6, seed=s.seed)
        self.reflector = BgpRouteReflector(
            self.sim, self.underlay,
            rloc=IPv4Address.parse("192.168.255.10"), node=spines[0],
            per_peer_service_s=s.rr_per_peer_service_s,
            service_jitter_s=s.rr_per_peer_service_s / 5.0,
            batch_interval_s=s.rr_batch_interval_s,
            seed=s.seed + 1,
        )
        vn = VNId(self.VN_ID)
        self.vn = vn
        self.host_edges = []
        for index in range(2):
            edge = _BgpHostEdge(
                self.sim, "bgp-edge-%d" % index,
                IPv4Address(0xC0A80001 + index), leaves[index],
                self.underlay, self.reflector,
                s.detection_delay_s, s.auth_delay_s, vn,
            )
            edge.install_delivery()
            self.host_edges.append(edge)

        self.source_peers = []
        self.hosts = []
        self._monitored = []
        self._source_ips = []
        self._built = False

    # -- construction ---------------------------------------------------------------
    def setup(self):
        s = self.scenario
        # Hosts with overlay IPs mirroring the LISP run's pool.
        from repro.fabric.endpoint import Endpoint
        from repro.net.addresses import MacAddress

        base_ip = int(IPv4Address.parse("10.128.0.10"))
        for index in range(s.num_hosts):
            host = Endpoint("robot-%d" % index, MacAddress(0x020000000000 + index),
                            sink=self._host_sink)
            host.ip = IPv4Address(base_ip + index)
            host.vn = self.vn
            self.hosts.append(host)
        self._monitored = self.hosts[:s.monitored_hosts]
        monitored_eids = {h.ip.to_prefix() for h in self._monitored}

        # Source peers: interested only in their monitored hosts' EIDs
        # (storage optimization; all updates still transit the RR).
        _, _, leaves = self.topology, None, None
        leaf_names = ["leaf-%d" % i for i in range(s.total_edges)]
        for index in range(s.num_source_edges):
            peer = BgpPeer(
                self.sim, "bgp-src-%d" % index,
                IPv4Address(0xC0A81001 + index), leaf_names[2 + index],
                self.underlay, self.reflector,
                interest=monitored_eids,
            )
            self.source_peers.append(peer)
            self._source_ips.append(IPv4Address(0xAC100001 + index))

        # Steady state: hosts attached and routes preloaded everywhere
        # (the paper's testbed was converged before measurement began).
        for index, host in enumerate(self.hosts):
            edge = self.host_edges[index % 2]
            edge.attach_host(host, advertise=False)
            eid = host.ip.to_prefix()
            for peer in self.source_peers:
                if peer.interest is None or eid in peer.interest:
                    peer.routes[(int(self.vn), eid)] = (edge.rloc, 0)
        self._built = True

    def _host_sink(self, endpoint, packet, now):
        self.recorder.on_delivery(endpoint.identity, now)

    # -- traffic -----------------------------------------------------------------------
    def _start_monitored_traffic(self):
        s = self.scenario
        for index, host in enumerate(self._monitored):
            peer = self.source_peers[index % len(self.source_peers)]
            src_ip = self._source_ips[index % len(self._source_ips)]
            self._schedule_stream(peer, src_ip, host, s.monitor_interval_s,
                                  offset=self.rng.uniform(0, s.monitor_interval_s))

    def _schedule_stream(self, peer, src_ip, host, interval, offset):
        sim = self.sim
        eid = host.ip.to_prefix()

        def tick():
            rloc = peer.route_for(self.vn, eid)
            if rloc is not None:
                packet = make_udp_packet(src_ip, host.ip, 40000, 40000, size=1500)
                self.underlay.send(peer.rloc, rloc, packet)
            sim.schedule(interval, tick)

        sim.schedule(offset, tick)

    # -- mobility -------------------------------------------------------------------------
    def _move_host(self, host):
        old = host.edge
        if old is None:
            return
        new = self.host_edges[1] if old is self.host_edges[0] else self.host_edges[0]
        self.recorder.on_detach(host.identity, self.sim.now)
        old.detach_host(host)
        new.attach_host(host, advertise=True)

    def _schedule_mobility(self, start, duration):
        s = self.scenario
        sim = self.sim
        total_moves = int(s.moves_per_second * duration)
        monitored_period = max(
            len(self._monitored) / (s.moves_per_second * 0.5), 0.05
        )
        monitored_moves = 0
        t = 0.0
        while t < duration:
            for index, host in enumerate(self._monitored):
                at = start + t + (index + 1) * monitored_period / (len(self._monitored) + 1)
                if at - start >= duration:
                    break
                sim.schedule_at(at, self._move_host, host)
                monitored_moves += 1
            t += monitored_period
        background = self.hosts[len(self._monitored):]
        remaining = max(0, total_moves - monitored_moves)
        for _ in range(remaining):
            host = self.rng.choice(background)
            at = start + self.rng.uniform(0, duration)
            sim.schedule_at(at, self._move_host, host)

    # -- main entry ------------------------------------------------------------------------
    def run(self):
        if not self._built:
            self.setup()
        s = self.scenario
        sim = self.sim
        self._start_monitored_traffic()
        self._schedule_mobility(sim.now, s.warmup_s + s.measure_duration_s)
        sim.run(until=sim.now + s.warmup_s)
        self.recorder.samples = []
        start = sim.now
        sim.run(until=start + s.measure_duration_s + 1.0)
        return list(self.recorder.samples)
