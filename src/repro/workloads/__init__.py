"""Workload generators reproducing the paper's two deployment scenarios.

* :mod:`repro.workloads.campus` — the buildings A/B diurnal presence +
  traffic model behind fig. 9 / table 5 (FIB state study).
* :mod:`repro.workloads.warehouse` — the 16,000-robot, 800-moves/s
  massive-mobility scenario behind fig. 11 (handover delay, LISP vs BGP).
* :mod:`repro.workloads.distributed_campus` — N federated sites with an
  inter-site traffic mix and cross-site roaming (multi-site subsystem).
* :mod:`repro.workloads.wireless_campus` — stations walking across APs
  with Zipf traffic (fabric-wireless subsystem), incl. roam storms.
* :mod:`repro.workloads.distributed_wireless_campus` — wireless overlays
  on every site of a federation, with walks that cross the transit
  (inter-site wireless roaming), incl. inter-site roam storms.
* :mod:`repro.workloads.chaos_campus` — a two-border campus carrying
  probe traffic and wireless roams while a fault schedule breaks links,
  servers and borders (chaos suite's canonical scenario).
* :mod:`repro.workloads.overload_storm` — a request storm at ~3x server
  capacity measuring resolution goodput with and without the overload
  armor (bounded queues, admission control, backpressure, breakers,
  serve-stale).
* :mod:`repro.workloads.traffic` — shared flow/popularity machinery.
"""

from repro.workloads.traffic import FlowGenerator, PopularityModel
from repro.workloads.campus import (
    CampusProfile,
    CampusWorkload,
    BUILDING_A,
    BUILDING_B,
)
from repro.workloads.warehouse import (
    WarehouseScenario,
    WarehouseLispRun,
    WarehouseBgpRun,
)
from repro.workloads.distributed_campus import (
    DistributedCampusProfile,
    DistributedCampusWorkload,
)
from repro.workloads.distributed_wireless_campus import (
    DistributedWirelessCampusProfile,
    DistributedWirelessCampusWorkload,
)
from repro.workloads.wireless_campus import (
    WirelessCampusProfile,
    WirelessCampusWorkload,
)
from repro.workloads.chaos_campus import (
    ChaosCampusProfile,
    ChaosCampusWorkload,
)
from repro.workloads.overload_storm import (
    OverloadStormProfile,
    OverloadStormWorkload,
    ResolutionProber,
)

__all__ = [
    "ChaosCampusProfile",
    "ChaosCampusWorkload",
    "DistributedCampusProfile",
    "DistributedCampusWorkload",
    "DistributedWirelessCampusProfile",
    "DistributedWirelessCampusWorkload",
    "FlowGenerator",
    "OverloadStormProfile",
    "OverloadStormWorkload",
    "PopularityModel",
    "ResolutionProber",
    "CampusProfile",
    "CampusWorkload",
    "BUILDING_A",
    "BUILDING_B",
    "WarehouseScenario",
    "WarehouseLispRun",
    "WarehouseBgpRun",
    "WirelessCampusProfile",
    "WirelessCampusWorkload",
]
