"""Chaos campus workload: a fabric surviving faults under live traffic.

The robustness scenario behind the chaos bench and the determinism
lane's third digest: a two-border campus with every recovery knob
switched on — registration retry + periodic refresh, server-side
registration TTL sweeps, edge border-failover — carrying continuous
probe traffic and a trickle of wireless roams while a
:class:`~repro.chaos.ChaosEngine` replays a fault schedule over it:
an uplink cut, a routing-server crash and cold restart, a border
death, a spine death.

What the run yields:

* a probe-measured **blackhole-seconds** total and per-fault
  **reconvergence delays** (:class:`~repro.chaos.ProbeMonitor`);
* a **healing verdict** — after the last heal and a settle, the
  no-stale-mapping oracle (:func:`repro.chaos.stale_mappings`) must
  come back empty;
* a **counter ledger + digest** covering every device counter, the
  probe ledger and the chaos trace — the bit-identity surface the CI
  chaos-smoke lane compares across two processes.
"""

from __future__ import annotations

import hashlib
import json

from repro.chaos import ChaosEngine, ChaosFault, ChaosSchedule, ProbeMonitor, stale_mappings
from repro.core.errors import ConfigurationError
from repro.core.retry import RetryPolicy
from repro.fabric.network import FabricConfig, FabricNetwork
from repro.sim.rng import SeededRng
from repro.wireless.deployment import WirelessConfig, WirelessFabric


class ChaosCampusProfile:
    """Deployment shape + recovery knobs of the chaos scenario.

    Unlike the perf workloads (fast-path knobs off by default), the
    recovery knobs here default **on** — resilience is the subject
    under test, and the scenario is meaningless without it.
    """

    def __init__(self, name="chaos-campus", num_edges=6, num_borders=2,
                 num_routing_servers=1, clients=8, servers=3, stations=4,
                 aps_per_edge=1, probe_interval_s=0.05, probe_pairs=6,
                 dwell_mean_s=4.0, map_cache_ttl=5.0,
                 register_retry=None, register_refresh_s=2.0,
                 registration_ttl_s=6.0, registration_sweep_s=2.0,
                 border_failover=True, megaflow=True):
        if num_borders < 2:
            raise ConfigurationError(
                "the chaos campus needs two borders (failover scenario)"
            )
        self.name = name
        self.num_edges = num_edges
        self.num_borders = num_borders
        self.num_routing_servers = num_routing_servers
        self.clients = clients
        self.servers = servers
        self.stations = stations
        self.aps_per_edge = aps_per_edge
        self.probe_interval_s = probe_interval_s
        self.probe_pairs = probe_pairs
        self.dwell_mean_s = dwell_mean_s
        #: short map-cache TTL: stale cache entries a fault leaves behind
        #: must age out within the scenario, not after it
        self.map_cache_ttl = map_cache_ttl
        self.register_retry = register_retry or RetryPolicy(
            base_s=0.1, multiplier=2.0, max_delay_s=1.0, max_attempts=6,
        )
        self.register_refresh_s = register_refresh_s
        self.registration_ttl_s = registration_ttl_s
        self.registration_sweep_s = registration_sweep_s
        self.border_failover = border_failover
        #: megaflow on: fault-driven cache flushes are part of the story
        self.megaflow = megaflow


class ChaosCampusWorkload:
    """Drives a fabric through a fault schedule under live traffic."""

    VN_ID = 4200

    def __init__(self, profile=None, seed=1, schedule=None):
        self.profile = profile or ChaosCampusProfile()
        profile = self.profile
        self.rng = SeededRng(seed)
        self._walk_rng = self.rng.spawn("walk")

        self.fabric = FabricNetwork(FabricConfig(
            num_borders=profile.num_borders,
            num_edges=profile.num_edges,
            num_routing_servers=profile.num_routing_servers,
            seed=seed,
            map_cache_ttl=profile.map_cache_ttl,
            megaflow=profile.megaflow,
            register_retry=profile.register_retry,
            register_refresh_s=profile.register_refresh_s,
            border_failover=profile.border_failover,
            registration_ttl_s=profile.registration_ttl_s,
            registration_sweep_s=profile.registration_sweep_s,
        ))
        self.wireless = WirelessFabric(self.fabric, WirelessConfig(
            aps_per_edge=profile.aps_per_edge,
            register_retry=profile.register_retry,
        ))
        self._build_population()
        self.schedule = schedule or self.default_schedule()
        self.monitor = ProbeMonitor(
            self.fabric, self._probe_pairs(),
            interval_s=profile.probe_interval_s,
        )
        self.engine = ChaosEngine(self.fabric, self.schedule,
                                  monitor=self.monitor)
        self._walking = False

    # ------------------------------------------------------------------ population
    def _build_population(self):
        fabric = self.fabric
        profile = self.profile
        fabric.define_vn("chaos", self.VN_ID, "10.104.0.0/14")
        fabric.define_group("clients", 10, self.VN_ID)
        fabric.define_group("servers", 30, self.VN_ID)
        fabric.define_group("stations", 20, self.VN_ID)
        fabric.allow("clients", "servers")
        fabric.allow("stations", "servers")

        self.servers = [
            fabric.create_endpoint("%s-srv-%d" % (profile.name, index),
                                   "servers", self.VN_ID)
            for index in range(profile.servers)
        ]
        self.clients = [
            fabric.create_endpoint("%s-cli-%d" % (profile.name, index),
                                   "clients", self.VN_ID)
            for index in range(profile.clients)
        ]
        self.stations = [
            self.wireless.create_station("%s-sta-%d" % (profile.name, index),
                                         "stations", self.VN_ID)
            for index in range(profile.stations)
        ]

    def _probe_pairs(self):
        """Client->server pairs spread across edges (wired, stable)."""
        count = min(self.profile.probe_pairs, len(self.clients))
        return [
            (self.clients[index], self.servers[index % len(self.servers)])
            for index in range(count)
        ]

    # ------------------------------------------------------------------ schedule
    def default_schedule(self):
        """The canonical four-fault episode (all healed, ~9 s window).

        Ordered to compose: an uplink cut (IGP reroute), a
        routing-server crash mid-traffic with roams landing while it is
        down (re-registration storm on restart), a border death (edge
        failover + anchor adoption path), a spine death (node-level
        IGP event taking border-1's attachment with it), and finally an
        access-switch death — the one fault the spine-leaf redundancy
        cannot route around, so its endpoints go genuinely dark and the
        probe monitor accrues real blackhole-seconds.
        """
        return ChaosSchedule([
            ChaosFault(1.0, "link", ("leaf-0", "spine-0"), heal_after_s=1.5),
            ChaosFault(3.0, "routing_server", (0,), heal_after_s=1.2),
            ChaosFault(5.0, "border", (0,), heal_after_s=1.5),
            ChaosFault(7.0, "node", ("spine-1",), heal_after_s=1.0),
            ChaosFault(8.5, "node", ("leaf-1",), heal_after_s=0.8),
        ])

    # ------------------------------------------------------------------ bring-up
    def bring_up(self):
        fabric = self.fabric
        profile = self.profile
        for index, server in enumerate(self.servers):
            fabric.admit(server, index % profile.num_edges)
        for index, client in enumerate(self.clients):
            fabric.admit(client, (index + 1) % profile.num_edges)
        fabric.settle(max_time=120.0)
        num_aps = profile.num_edges * profile.aps_per_edge
        for index, station in enumerate(self.stations):
            self.wireless.associate(station, index % num_aps)
        fabric.settle(max_time=120.0)

    # ------------------------------------------------------------------ mobility
    def _other_ap(self, station):
        num_aps = len(self.wireless.aps)
        current = self.wireless.aps.index(station.ap)
        choices = [i for i in range(num_aps) if i != current]
        return self._walk_rng.choice(choices)

    def _walk_step(self, station):
        if not self._walking:
            return
        if station.associated:
            self.wireless.roam(station, self._other_ap(station))
        self.fabric.sim.schedule(
            self._walk_rng.expovariate(1.0 / self.profile.dwell_mean_s),
            self._walk_step, station,
        )

    def _start_walks(self):
        self._walking = True
        for station in self.stations:
            self.fabric.sim.schedule(
                self._walk_rng.expovariate(1.0 / self.profile.dwell_mean_s),
                self._walk_step, station,
            )

    # ------------------------------------------------------------------ entry point
    def run(self, duration_s=12.0):
        """Bring up, probe, walk, break things, heal, settle, report."""
        self.bring_up()
        self.monitor.start()
        self._start_walks()
        self.engine.arm()
        self.fabric.sim.run(until=self.fabric.sim.now + duration_s)
        self._walking = False
        self.monitor.stop()
        self.fabric.settle(max_time=120.0)
        self.monitor.flush()
        return self.summarize()

    # ------------------------------------------------------------------ reporting
    def summarize(self):
        fabric = self.fabric
        edges = fabric.edges
        summary = {
            "faults": self.engine.summary(),
            "probes": self.monitor.summary(),
            "oracle_violations": len(stale_mappings(fabric)),
            "register_retries_sent": sum(
                e.counters.register_retries_sent for e in edges),
            "register_acks_received": sum(
                e.counters.register_acks_received for e in edges),
            "register_refreshes_sent": sum(
                e.counters.register_refreshes_sent for e in edges),
            "border_failovers": sum(
                e.counters.border_failovers for e in edges),
            "server_crashes": sum(
                s.stats.crashes for s in fabric.routing_servers),
            "server_restarts": sum(
                s.stats.restarts for s in fabric.routing_servers),
            "dropped_while_down": sum(
                s.stats.dropped_while_down for s in fabric.routing_servers),
            "expired_registrations": sum(
                s.stats.expired_registrations
                for s in fabric.routing_servers),
            "wlc_register_retries": self.wireless.wlc.stats.register_retries_sent,
            "underlay_blackholed": fabric.underlay.counters.blackholed,
            "underlay_dropped": fabric.underlay.counters.dropped_packets,
        }
        return summary

    def counter_ledger(self):
        """Every counter the chaos run touches, deterministically keyed.

        This is the chaos suite's bit-identity surface: two processes
        running the same seed and schedule must agree on every entry
        (the CI chaos-smoke lane hashes it via :meth:`digest`).
        """
        fabric = self.fabric
        ledger = {"schedule.digest": self.schedule.digest()}
        for edge in fabric.edges:
            for key, value in edge.counters.as_dict().items():
                ledger["%s.%s" % (edge.name, key)] = value
        for border in fabric.borders:
            for key, value in border.counters.as_dict().items():
                ledger["%s.%s" % (border.name, key)] = value
        for index, server in enumerate(fabric.routing_servers):
            for key, value in server.stats.as_dict().items():
                ledger["server%d.%s" % (index, key)] = value
        for key, value in self.wireless.wlc.stats.as_dict().items():
            ledger["wlc.%s" % key] = value
        for key, value in fabric.underlay.counters.as_dict().items():
            ledger["underlay.%s" % key] = value
        probes = self.monitor.summary()
        for key in ("probes_sent", "probes_received", "probes_lost"):
            ledger["probe.%s" % key] = probes[key]
        ledger["probe.blackhole_s"] = round(self.monitor.blackhole_s, 9)
        ledger["chaos.injected"] = self.engine.faults_injected
        ledger["chaos.healed"] = self.engine.faults_healed
        ledger["chaos.trace_events"] = len(self.engine.trace)
        ledger["oracle.violations"] = len(stale_mappings(fabric))
        return ledger

    def digest(self):
        """Stable hex digest of the counter ledger (determinism lane)."""
        payload = json.dumps(self.counter_ledger(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
