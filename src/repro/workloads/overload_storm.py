"""Overload storm workload: a control plane drowning in requests.

The robustness scenario behind the overload bench and the determinism
lane's fourth digest: a small wired campus whose routing server is hit
by a synthetic Map-Request storm at ~3x its service capacity (the
``overload`` chaos verb), while a high-rate resolution prober measures
**goodput** — the fraction of its requests answered within an SLO —
and wired roams plus short-TTL data traffic exercise the priority
classes and the stale-while-revalidate path.

Run twice — armored and bare — the scenario quantifies the overload
armor's whole point:

* **unprotected**, the server's FIFO backlog grows without bound for
  the entire storm and takes seconds to drain afterwards, so nearly
  every in-storm (and post-storm) resolution blows the SLO;
* **protected** (bounded queue + admission control + backpressure +
  breakers + serve-stale), the backlog is capped at tens of
  milliseconds: whatever is admitted is answered fast, refreshes shed
  first, and the fabric snaps back the moment the storm lifts.

The bench gates the protected/unprotected goodput ratio; the chaos
healing oracle must come back clean after the storm is relieved
(shedding may delay convergence, never corrupt it).
"""

from __future__ import annotations

import hashlib
import json

from repro.chaos import ChaosEngine, ChaosFault, ChaosSchedule, stale_mappings
from repro.core.breaker import BreakerPolicy
from repro.core.retry import RetryPolicy
from repro.fabric.network import FabricConfig, FabricNetwork
from repro.lisp.messages import MapRequest, control_packet
from repro.net.addresses import IPv4Address
from repro.sim.rng import SeededRng

#: The prober's underlay address (outside every device numbering block).
_RLOC_PROBER = "192.168.255.40"


class ResolutionProber:
    """A device-less Map-Request source measuring resolution goodput.

    Attaches at a spine node with its own RLOC and fires one request
    every ``interval_s`` at the routing server, asking for a real
    (registered) EID.  A reply arriving within ``slo_s`` of its request
    counts toward goodput; shed requests simply never come back.  Ticks
    ride daemon events so an armed prober never wedges ``settle()``.
    """

    def __init__(self, fabric, server, vn, eid, interval_s=0.01, slo_s=0.06):
        self.fabric = fabric
        self.server = server
        self.vn = vn
        self.eid = eid
        self.interval_s = interval_s
        self.slo_s = slo_s
        self.rloc = IPv4Address.parse(_RLOC_PROBER)
        self.sent = 0
        self.answered = 0
        self.within_slo = 0
        self.latencies = []
        self._pending = {}       # nonce -> send time
        self._running = False
        fabric.underlay.attach(self.rloc, fabric.spine_nodes[0],
                               self._deliver)

    def start(self):
        self._running = True
        self.fabric.sim.schedule_daemon(self.interval_s, self._tick)

    def stop(self):
        self._running = False

    def _tick(self):
        if not self._running:
            return
        request = MapRequest(self.vn, self.eid, reply_to=self.rloc)
        self._pending[request.nonce] = self.fabric.sim.now
        self.sent += 1
        self.fabric.underlay.send(
            self.rloc, self.server.rloc,
            control_packet(self.rloc, self.server.rloc, request),
        )
        self.fabric.sim.schedule_daemon(self.interval_s, self._tick)

    def _deliver(self, packet):
        sent_at = self._pending.pop(packet.payload.nonce, None)
        if sent_at is None:
            return
        latency = self.fabric.sim.now - sent_at
        self.answered += 1
        self.latencies.append(latency)
        if latency <= self.slo_s:
            self.within_slo += 1

    @property
    def goodput(self):
        """Fraction of sent probes answered within the SLO."""
        return self.within_slo / self.sent if self.sent else 0.0

    def summary(self):
        return {
            "probes_sent": self.sent,
            "probes_answered": self.answered,
            "probes_within_slo": self.within_slo,
            "goodput": round(self.goodput, 6),
            "max_latency_s": round(max(self.latencies), 9) if self.latencies else 0.0,
        }


class OverloadStormProfile:
    """Deployment shape, storm intensity, and the armor toggle.

    ``protected=True`` switches on the whole overload-armor stack;
    ``protected=False`` is the bare baseline the bench compares
    against.  The storm rate defaults to ~3x the server's service
    capacity (~2750 msg/s at the default 300 µs base service time), the
    saturation regime the bench gates.
    """

    def __init__(self, name="overload-storm", num_edges=4, num_borders=1,
                 clients=6, servers=3, protected=True,
                 probe_interval_s=0.01, probe_slo_s=0.06,
                 storm_start_s=1.0, storm_duration_s=2.0,
                 storm_rate_per_s=8250.0,
                 roams_during_storm=4, traffic_interval_s=0.25,
                 map_cache_ttl=1.0,
                 max_pending=64, max_backlog_s=0.05,
                 serve_stale_s=5.0, register_refresh_s=0.5,
                 register_retry=None, breaker=None):
        self.name = name
        self.num_edges = num_edges
        self.num_borders = num_borders
        self.clients = clients
        self.servers = servers
        self.protected = protected
        self.probe_interval_s = probe_interval_s
        self.probe_slo_s = probe_slo_s
        self.storm_start_s = storm_start_s
        self.storm_duration_s = storm_duration_s
        self.storm_rate_per_s = storm_rate_per_s
        self.roams_during_storm = roams_during_storm
        #: light client->server sends; with the short ``map_cache_ttl``
        #: they expire mid-storm and walk the serve-stale path
        self.traffic_interval_s = traffic_interval_s
        self.map_cache_ttl = map_cache_ttl
        #: armor knobs (only applied when ``protected``)
        self.max_pending = max_pending
        self.max_backlog_s = max_backlog_s
        self.serve_stale_s = serve_stale_s
        #: refreshes are deliberately aggressive so the storm has bulk
        #: traffic to shed first (the priority-class story)
        self.register_refresh_s = register_refresh_s
        self.register_retry = register_retry or RetryPolicy(
            base_s=0.1, multiplier=2.0, max_delay_s=1.0, max_attempts=6,
        )
        self.breaker = breaker or BreakerPolicy(
            failure_threshold=4, reset_timeout_s=0.5, jitter=0.1,
        )


class OverloadStormWorkload:
    """Drives a fabric through a request storm and measures goodput."""

    VN_ID = 4300

    def __init__(self, profile=None, seed=17, schedule=None):
        self.profile = profile or OverloadStormProfile()
        profile = self.profile
        self.rng = SeededRng(seed)
        self._roam_rng = self.rng.spawn("roam")

        armor = {}
        if profile.protected:
            armor = dict(
                server_max_pending=profile.max_pending,
                server_max_backlog_s=profile.max_backlog_s,
                backpressure=True,
                breaker=profile.breaker,
                serve_stale_s=profile.serve_stale_s,
            )
        self.fabric = FabricNetwork(FabricConfig(
            num_borders=profile.num_borders,
            num_edges=profile.num_edges,
            seed=seed,
            map_cache_ttl=profile.map_cache_ttl,
            batching=True,
            register_retry=profile.register_retry,
            register_refresh_s=profile.register_refresh_s,
            **armor,
        ))
        if profile.protected:
            # Admission decisions feed the no-priority-inversion
            # property test; a plain list, so digests never see it.
            for server in self.fabric.routing_servers:
                server.queue.admission_log = []
        self._build_population()
        self.schedule = schedule or self.default_schedule()
        self.engine = ChaosEngine(self.fabric, self.schedule)
        self.prober = None
        self._traffic_on = False

    # ------------------------------------------------------------------ population
    def _build_population(self):
        fabric = self.fabric
        profile = self.profile
        fabric.define_vn("storm", self.VN_ID, "10.108.0.0/14")
        fabric.define_group("clients", 10, self.VN_ID)
        fabric.define_group("servers", 30, self.VN_ID)
        fabric.allow("clients", "servers")
        self.servers = [
            fabric.create_endpoint("%s-srv-%d" % (profile.name, index),
                                   "servers", self.VN_ID)
            for index in range(profile.servers)
        ]
        self.clients = [
            fabric.create_endpoint("%s-cli-%d" % (profile.name, index),
                                   "clients", self.VN_ID)
            for index in range(profile.clients)
        ]

    # ------------------------------------------------------------------ schedule
    def default_schedule(self):
        """One storm: inject at ``storm_start_s``, relieve after the
        configured duration (the heal verb gets the inject args back)."""
        profile = self.profile
        return ChaosSchedule([
            ChaosFault(profile.storm_start_s, "overload",
                       (0, profile.storm_rate_per_s),
                       heal_after_s=profile.storm_duration_s),
        ])

    # ------------------------------------------------------------------ bring-up
    def bring_up(self):
        fabric = self.fabric
        profile = self.profile
        for index, server in enumerate(self.servers):
            fabric.admit(server, index % profile.num_edges)
        for index, client in enumerate(self.clients):
            fabric.admit(client, (index + 1) % profile.num_edges)
        fabric.settle(max_time=120.0)
        self.prober = ResolutionProber(
            fabric, fabric.routing_servers[0], self.VN_ID,
            self.servers[0].ip.to_prefix(),
            interval_s=profile.probe_interval_s,
            slo_s=profile.probe_slo_s,
        )

    # ------------------------------------------------------------------ live load
    def _start_traffic(self):
        self._traffic_on = True
        self.fabric.sim.schedule_daemon(
            self.profile.traffic_interval_s, self._traffic_tick, 0)

    def _traffic_tick(self, index):
        if not self._traffic_on:
            return
        client = self.clients[index % len(self.clients)]
        server = self.servers[index % len(self.servers)]
        self.fabric.send(client, server)
        self.fabric.sim.schedule_daemon(
            self.profile.traffic_interval_s, self._traffic_tick, index + 1)

    def _schedule_roams(self):
        """Wired roams landing mid-storm: their Map-Registers carry the
        mobility bit and must be admitted ahead of periodic refreshes."""
        profile = self.profile
        if not profile.roams_during_storm:
            return
        step = profile.storm_duration_s / (profile.roams_during_storm + 1)
        for index in range(profile.roams_during_storm):
            client = self.clients[index % len(self.clients)]
            at = profile.storm_start_s + step * (index + 1)
            self.fabric.sim.schedule(at, self._roam, client)

    def _roam(self, client):
        current = self.fabric.edges.index(client.edge)
        choices = [i for i in range(len(self.fabric.edges)) if i != current]
        self.fabric.roam(client, self._roam_rng.choice(choices))

    # ------------------------------------------------------------------ entry point
    def run(self, duration_s=6.0):
        """Bring up, probe, storm, relieve, settle, report."""
        self.bring_up()
        self.prober.start()
        self._start_traffic()
        self._schedule_roams()
        self.engine.arm()
        self.fabric.sim.run(until=self.fabric.sim.now + duration_s)
        self.prober.stop()
        self._traffic_on = False
        self.fabric.settle(max_time=120.0)
        return self.summarize()

    # ------------------------------------------------------------------ reporting
    def summarize(self):
        fabric = self.fabric
        edges = fabric.edges
        server = fabric.routing_servers[0]
        summary = {
            "protected": self.profile.protected,
            "probes": self.prober.summary(),
            "goodput": self.prober.goodput,
            "faults": self.engine.summary(),
            "oracle_violations": len(stale_mappings(fabric)),
            "shed_total": server.queue.shed_total,
            "shed_by_class": dict(server.queue.shed_by_class),
            "max_depth_seen": server.queue.max_depth_seen,
            "max_backlog_seen_s": round(server.queue.max_delay_s, 9),
            "overload_signals": server.overload_signals,
            "bp_overload_acks": sum(e.bp_overload_acks for e in edges),
            "max_bp_factor": max(e._bp_factor for e in edges),
            "stale_served": sum(e.stale_served for e in edges),
            "stale_hits": sum(e.map_cache.stale_hits for e in edges),
            "breaker_deferrals": sum(e.breaker_deferrals for e in edges),
            "breaker_opens": sum(
                b.opens for e in edges for b in e._breakers.values()),
        }
        return summary

    def counter_ledger(self):
        """Every counter the storm run touches, deterministically keyed.

        The overload suite's bit-identity surface — device counters
        plus the plain-attribute armor counters (shed totals, breaker
        state, stale serves) that deliberately stay out of the
        ``Counters`` blocks so legacy digests never move.
        """
        fabric = self.fabric
        ledger = {"schedule.digest": self.schedule.digest()}
        for edge in fabric.edges:
            for key, value in edge.counters.as_dict().items():
                ledger["%s.%s" % (edge.name, key)] = value
            ledger["%s.bp_overload_acks" % edge.name] = edge.bp_overload_acks
            ledger["%s.stale_served" % edge.name] = edge.stale_served
            ledger["%s.stale_hits" % edge.name] = edge.map_cache.stale_hits
            ledger["%s.breaker_deferrals" % edge.name] = edge.breaker_deferrals
        for border in fabric.borders:
            for key, value in border.counters.as_dict().items():
                ledger["%s.%s" % (border.name, key)] = value
        for index, server in enumerate(fabric.routing_servers):
            for key, value in server.stats.as_dict().items():
                ledger["server%d.%s" % (index, key)] = value
            queue = server.queue
            ledger["server%d.shed_total" % index] = queue.shed_total
            for prio, count in sorted(queue.shed_by_class.items()):
                ledger["server%d.shed_class%d" % (index, prio)] = count
            ledger["server%d.max_depth_seen" % index] = queue.max_depth_seen
            ledger["server%d.overload_signals" % index] = server.overload_signals
        for key, value in fabric.underlay.counters.as_dict().items():
            ledger["underlay.%s" % key] = value
        probes = self.prober.summary()
        for key in ("probes_sent", "probes_answered", "probes_within_slo"):
            ledger["probe.%s" % key] = probes[key]
        ledger["chaos.injected"] = self.engine.faults_injected
        ledger["chaos.healed"] = self.engine.faults_healed
        ledger["oracle.violations"] = len(stale_mappings(fabric))
        return ledger

    def digest(self):
        """Stable hex digest of the counter ledger (determinism lane)."""
        payload = json.dumps(self.counter_ledger(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
