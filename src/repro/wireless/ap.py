"""Fabric-enabled access point: VXLAN-GPO encapsulation at the AP.

The design point the paper folds wireless into the fabric with: the AP
is a *data-plane* device only.  Station traffic is encapsulated locally
— VXLAN-GPO with the station's VN and GroupId, exactly the header an
edge would build for a wired endpoint — and tunneled one wired hop to
the edge the AP hangs off.  Nothing transits the WLC; the controller
participates purely in the control plane (see
:class:`repro.wireless.wlc.FabricWlc`).

Roaming at the radio layer is an AP-to-AP handoff: the new AP takes the
station immediately (traffic can flow upstream at once) and informs the
WLC, which re-runs onboarding and re-registers the station's location.
"""

from __future__ import annotations

from repro.core.counters import Counters
from repro.fabric.endpoint import Endpoint
from repro.net.vxlan import encapsulate

#: 802.11 air-interface cost charged to association signaling.
AIR_DELAY_S = 100e-6

#: Wired AP-to-edge uplink hop (one access-layer cable).
UPLINK_DELAY_S = 10e-6


class FabricApCounters(Counters):
    """Per-AP data/control statistics."""

    FIELDS = (
        "associations",
        "disassociations",
        "roams_in",
        "packets_encapsulated",
        "packets_delivered",
        "not_onboarded_drops",
    )


class FabricAp:
    """One fabric AP, attached to an edge router's access layer."""

    def __init__(self, sim, name, edge, wlc, address,
                 air_delay_s=AIR_DELAY_S, uplink_delay_s=UPLINK_DELAY_S):
        self.sim = sim
        self.name = name
        self.edge = edge
        self.wlc = wlc
        #: the AP's own uplink address (outer source of its VXLAN tunnel)
        self.address = address
        self.air_delay_s = air_delay_s
        self.uplink_delay_s = uplink_delay_s
        self.stations = {}   # identity -> Station
        self.counters = FabricApCounters()
        edge.attach_ap(self)
        wlc.register_ap(self)

    # ------------------------------------------------------------------ radio layer
    def associate(self, station, on_complete=None):
        """A station (re)appears on this AP's radio.

        The radio handoff is immediate; the WLC hears about it one air
        round later and drives authentication + location registration.
        ``on_complete(station, accepted)`` fires when onboarding ends
        (immediately for an intra-edge fast roam).
        """
        if station.ap is self:
            if self.edge.vrf.lookup_identity(station.identity) is not None:
                # Already fully onboarded here: nothing to redo.
                if on_complete is not None:
                    on_complete(station, True)
                return
            # Re-associate while the original onboarding is still in
            # flight: re-run the control-plane flow (idempotent) so the
            # caller gets an honest completion instead of a blind "ok".
            self.sim.schedule(self.air_delay_s, self.wlc.on_associate,
                              station, self, None, on_complete)
            return
        previous = station.ap
        if previous is not None:
            previous.drop_station(station)
            station.roams += 1
            self.counters.roams_in += 1
            if previous.edge is not self.edge:
                # The old edge cannot deliver over a radio that left; its
                # VRF entry is cleaned up by the fig. 5 Map-Notify once
                # the WLC re-registers the station.
                station.edge = None
        self.stations[station.identity] = station
        station.ap = self
        station.associations += 1
        self.counters.associations += 1
        self.sim.schedule(self.air_delay_s, self.wlc.on_associate,
                          station, self, previous, on_complete)

    def drop_station(self, station):
        """Radio-layer detach (roam-away or disassociation)."""
        self.stations.pop(station.identity, None)
        self.counters.disassociations += 1

    # ------------------------------------------------------------------ data plane
    def deliver_to_station(self, station, packet):
        """Downstream delivery: the edge hands the packet to the AP,
        which forwards it over the radio — the same one-hop cost the
        upstream direction pays, so the data-plane accounting is
        symmetric."""
        self.counters.packets_delivered += packet.train
        self.sim.schedule(self.uplink_delay_s, self._radio_deliver,
                          station, packet)

    def _radio_deliver(self, station, packet):
        if self.stations.get(station.identity) is station:
            Endpoint.receive(station, packet, self.sim.now)

    def inject_from_station(self, station, packet):
        """Station traffic: VXLAN-GPO encap *here*, no controller hairpin."""
        if self.stations.get(station.identity) is not station:
            return  # raced a roam-away
        if station.vn is None or station.group is None:
            self.counters.not_onboarded_drops += packet.train
            return
        encapsulate(packet, self.address, self.edge.rloc,
                    station.vn, station.group)
        self.counters.packets_encapsulated += packet.train
        self.sim.schedule(self.uplink_delay_s, self.edge.receive_from_ap, packet)

    def __repr__(self):
        return "FabricAp(%s, edge=%s, stations=%d)" % (
            self.name, self.edge.name, len(self.stations)
        )
