"""Wireless station: an endpoint whose access port is an AP radio.

A :class:`Station` is a fabric endpoint in every control-plane respect —
identity, MAC, overlay IP, VN, GroupId — but its data path runs through
the access point it is associated with instead of a wired edge port.
On the fabric data plane the AP VXLAN-GPO-encapsulates locally; on the
CAPWAP baseline the same ``send`` call tunnels to the controller — which
is what lets experiments drive *identical* stations through both planes.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.fabric.endpoint import Endpoint


class Station(Endpoint):
    """A wireless endpoint (laptop, phone, badge, sensor)."""

    def __init__(self, identity, mac, secret="secret", sink=None):
        super().__init__(identity, mac, secret=secret, sink=sink)
        #: current radio association (a FabricAp, an AccessPointTunnel in
        #: the CAPWAP baseline, or None when out of range)
        self.ap = None
        self.associations = 0
        self.roams = 0

    @property
    def associated(self):
        return self.ap is not None

    def send(self, packet):
        """Inject a packet through the serving AP (not a wired port)."""
        if self.ap is None:
            raise ConfigurationError(
                "station %s is not associated" % self.identity
            )
        self.packets_sent += packet.train
        self.ap.inject_from_station(self, packet)

    def receive(self, packet, now):
        # On the fabric data plane the serving edge delivers via the AP
        # (downlink hop + per-AP accounting); the CAPWAP baseline's
        # tunnel AP already charged its path, so deliver directly.
        deliver = getattr(self.ap, "deliver_to_station", None)
        if deliver is not None:
            deliver(self, packet)
            return
        super().receive(packet, now)

    def __repr__(self):
        where = "@%s" % self.ap.name if self.ap is not None else "unassociated"
        return "Station(%s, ip=%s, %s)" % (self.identity, self.ip, where)
