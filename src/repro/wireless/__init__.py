"""Fabric-enabled wireless (the paper's WLC control-plane integration).

The design folds wireless into the fabric instead of anchoring it at a
gateway: the WLC joins the *control plane only* — authenticating
stations, obtaining their SGT, and registering their location with the
routing server on behalf of the APs — while APs VXLAN-GPO-encapsulate
station traffic locally.  Roaming becomes a map-server update (fig. 5)
rather than a controller-state migration, so roam delay is independent
of offered data load.  Contrast :mod:`repro.baselines.wlc`, the sec. 2
status-quo CAPWAP model this subsystem is ablated against.

* :class:`Station` — a wireless endpoint (association, 802.1X-style
  group assignment, same identity model as wired endpoints).
* :class:`FabricAp` — data plane: VXLAN-at-the-AP, one uplink hop to
  the serving edge, radio-level AP-to-AP handoff.
* :class:`FabricWlc` — control plane: auth + SGT + registrar-proxied
  Map-Register/Unregister, single control-CPU queue.
* :class:`WirelessFabric` — deployment builder over a FabricNetwork.
* :class:`MultiSiteWireless` — wireless overlays on every site of a
  :class:`~repro.multisite.network.MultiSiteNetwork`, composing WLC
  handoff withdrawal with the multi-site away anchoring so stations
  roam *between sites* with control-plane signaling only.
* :mod:`repro.wireless.plumbing` — station/AP harness shared with the
  CAPWAP baseline so ablations drive identical stations through both
  data planes.
"""

from repro.wireless.ap import FabricAp, FabricApCounters
from repro.wireless.deployment import (
    MultiSiteWireless,
    WirelessConfig,
    WirelessFabric,
)
from repro.wireless.plumbing import (
    DelaySamples,
    HandoverRecorder,
    PoissonPairTraffic,
    StationPairPlan,
    SteadyStream,
    assign_static_ips,
    make_stations,
)
from repro.wireless.station import Station
from repro.wireless.wlc import FabricWlc, FabricWlcStats

__all__ = [
    "DelaySamples",
    "FabricAp",
    "FabricApCounters",
    "FabricWlc",
    "FabricWlcStats",
    "HandoverRecorder",
    "MultiSiteWireless",
    "PoissonPairTraffic",
    "Station",
    "StationPairPlan",
    "SteadyStream",
    "WirelessConfig",
    "WirelessFabric",
    "assign_static_ips",
    "make_stations",
]
