"""The fabric WLC: a control-plane-only wireless controller.

The paper's fabric-wireless integration in one sentence: the WLC "joins
the control plane only" — it authenticates stations, obtains their SGT
from the policy server, and registers their location with the routing
server *on behalf of* the AP's edge, while the data plane stays fully
distributed (APs encapsulate VXLAN locally).  Compare
:class:`repro.baselines.wlc.WlanController`, which sinks every data
packet through one queue.

Concretely, per association the WLC:

1. runs 802.1X-style authentication against the policy server (the
   Access-Request carries ``session_rloc`` = the serving edge, so SXP
   rule targeting keeps tracking the data plane);
2. leases the station's overlay IP (kept across roams — L3 mobility);
3. installs forwarding state on the serving edge (VRF entry + egress
   rule rows) — the only thing the edge itself has to hold;
4. Map-Registers the station's EIDs with ``rloc`` = the serving edge,
   as *registrar* (ack requested).  On a roam the routing server's
   normal fig. 5 machinery notifies the previous edge, which redirects
   in-flight packets; the WLC additionally relays the acked record to
   any older edges from the station's roam history, so location state
   never goes stale along a roam chain.

The WLC serializes association work through one control CPU queue —
that queue (not any data path) is what a roam storm stresses, which is
exactly the scaling property the fabric design buys.
"""

from __future__ import annotations

from repro.core.batching import Batcher
from repro.core.breaker import CircuitBreaker
from repro.core.counters import Counters
from repro.core.errors import ConfigurationError
from repro.core.queueing import SerialQueue
from repro.lisp.messages import (
    EidRecord,
    MapNotify,
    MapRegister,
    MapUnregister,
    control_packet,
    next_nonce,
)
from repro.policy.server import AccessRequest, AccessResult
from repro.sim.rng import SeededRng


class FabricWlcStats(Counters):
    """Control-plane event counters (the WLC has no data-plane ones)."""

    FIELDS = (
        "associations",
        "roams",
        "intra_edge_roams",
        "disassociations",
        "auth_requests",
        "auth_rejects",
        "registers_sent",
        "register_records_sent",
        "register_batches_sent",
        "unregisters_sent",
        "registrar_acks_received",
        "stale_edge_notifies",
        "handoffs_out",
        "register_retries_sent",
        "register_retry_exhausted",
    )


class FabricWlc:
    """Controller for fabric-enabled wireless (control plane only).

    Parameters
    ----------
    sim / underlay / rloc / node:
        Simulation kernel and the controller's attachment point.  The
        WLC is an underlay device like any server — but it never sees a
        station data packet.
    register_rlocs / policy_server_rloc / dhcp:
        The fabric control plane the WLC integrates with.  Registrations
        fan out to every routing server (mirroring edge behaviour with
        horizontally scaled control planes).
    service_s:
        Control CPU time per association/disassociation event — the
        single-queue model whose backlog a roam storm measures.
    register_families:
        Which station EIDs the registrar registers.  Every family's
        registration requests an ack (so the roam-chain relay can
        refresh stale caches per family); the IPv4 ack doubles as the
        roam-completion sample.
    batching / register_flush_s:
        The control-plane fast path: with ``batching`` on, per-family
        registers (and in-band withdrawals) are coalesced per routing
        server inside a ``register_flush_s`` flush window and sent as
        one multi-record Map-Register, which the server applies
        atomically and acks with one aggregated Map-Notify.  Off by
        default so every experiment can ablate the knob.
    """

    def __init__(self, sim, underlay, rloc, node, register_rlocs,
                 policy_server_rloc, dhcp, service_s=150e-6,
                 register_families=("ipv4", "mac"),
                 batching=False, register_flush_s=2e-3,
                 register_retry=None, seed=37,
                 backpressure=False, breaker=None):
        self.sim = sim
        self.underlay = underlay
        self.rloc = rloc
        self.register_rlocs = tuple(register_rlocs)
        if not self.register_rlocs:
            raise ConfigurationError("WLC needs at least one routing server")
        self.policy_server_rloc = policy_server_rloc
        self.dhcp = dhcp
        self.service_s = service_s
        self.register_families = tuple(register_families)
        self.batching = batching
        self.register_flush_s = register_flush_s
        #: chaos-suite knob (off by default): resend a registration whose
        #: ack never came.  The registrar already asks for acks — without
        #: the retry, a lost Map-Register (or a crashed routing server)
        #: strands the station's location until its next roam.
        self.register_retry = register_retry
        #: overload armor (default off): widen the batch flush window
        #: when the ack server signals overload in-band...
        self.backpressure = backpressure
        self._bp_factor = 1.0
        self.bp_max_factor = 8.0
        self.bp_overload_acks = 0
        #: ...and gate registration resends behind a circuit breaker on
        #: the ack server so the WLC never feeds a retry storm.
        self.breaker_policy = breaker
        self._ack_breaker = None
        self.breaker_deferrals = 0
        self._rng = SeededRng(seed).spawn("wlc")
        self._batchers = {}       # server rloc -> Batcher of EidRecord
        self._batch_nonce = {}    # server rloc -> nonce of the open batch
        #: observability hook: Histogram wired onto every Batcher this
        #: WLC creates (None = off; see repro.obs.instrument)
        self.batch_flush_hist = None
        self.stats = FabricWlcStats()
        #: registration-completion delay samples (radio association to
        #: the routing server's ack), for the roam-storm benches
        self.registration_delays = []
        #: optional hook ``(station, delay_s)`` fired on each ack
        self.on_registered = None
        self._aps = []
        self._cpu = SerialQueue(sim)
        self._pending_auth = {}       # nonce -> (station, ap, previous, t0, cb)
        #: (vn int, eid) -> (station, stale rlocs, t0, is_completion,
        #: register nonce) — the nonce pins the ack to this registration
        #: instance (see _on_register_ack)
        self._pending_register = {}
        #: where each station's location is currently *registered* — the
        #: registrar's own record of truth.  ``station.edge`` is not
        #: usable for withdrawal: it goes None the instant the radio
        #: leaves an edge, long before the re-registration lands.
        self._registered_edge = {}    # identity -> EdgeRouter
        #: edges that served a station at some point in its roam history
        self._visited_edges = {}      # identity -> set of edge rlocs
        underlay.attach(rloc, node, self._on_packet)

    @property
    def max_queue_delay_s(self):
        """Worst backlog an association event saw on the control CPU."""
        return self._cpu.max_delay_s

    # ------------------------------------------------------------------ registry
    def register_ap(self, ap):
        self._aps.append(ap)

    @property
    def ap_count(self):
        return len(self._aps)

    # ------------------------------------------------------------------ association
    def on_associate(self, station, ap, previous_ap, on_complete=None):
        """Radio-layer notification from an AP (queued on the CPU)."""
        self._cpu.submit(self.service_s, self._process_association,
                         station, ap, previous_ap, self.sim.now, on_complete)

    def _process_association(self, station, ap, previous_ap, t0, on_complete):
        if station.ap is not ap:
            return  # moved again (or left) while queued
        span = self.sim.tracer.span(
            "wlc_associate", device=self,
            parent=getattr(station, "trace_ctx", None),
            station=station.identity, ap=ap.name,
            queue_wait_s=self.sim.now - t0,
        )
        if previous_ap is not None:
            self.stats.roams += 1
        else:
            self.stats.associations += 1
        if (previous_ap is not None and previous_ap.edge is ap.edge
                and ap.edge.vrf.lookup_identity(station.identity) is not None):
            # Intra-edge fast roam: the serving edge — and therefore the
            # registered RLOC, the VRF entry and the rules — are all
            # unchanged.  No auth, no registration, no notify.
            self.stats.intra_edge_roams += 1
            span.finish(outcome="intra_edge")
            if on_complete is not None:
                on_complete(station, True)
            return
        request = AccessRequest(
            station.identity, station.secret, reply_to=self.rloc,
            enforcement=ap.edge.enforcement, session_rloc=ap.edge.rloc,
        )
        request.trace_ctx = span.ctx
        self._pending_auth[request.nonce] = (
            station, ap, previous_ap, t0, on_complete, span
        )
        self.stats.auth_requests += 1
        self._send(self.policy_server_rloc, request)

    def _finish_auth(self, result):
        pending = self._pending_auth.pop(result.nonce, None)
        if pending is None:
            return
        station, ap, previous_ap, t0, on_complete, span = pending
        if station.ap is not ap:
            span.finish(outcome="superseded")
            return  # roamed again mid-auth; the newer association wins
        if not result.accepted:
            self.stats.auth_rejects += 1
            ap.drop_station(station)
            station.ap = None
            # A now-rejected station is cut off everywhere: if it was
            # onboarded (a roam re-auth), its old registration and VRF
            # entry must be withdrawn or peers would blackhole into the
            # previous edge forever.
            self._withdraw(station, reason="auth_reject", parent=span.ctx)
            span.finish(outcome="rejected")
            if on_complete is not None:
                on_complete(station, False)
            return
        station.vn = result.vn
        station.group = result.group
        if station.ip is None:
            station.ip, station.ipv6 = self.dhcp.lease(
                result.vn, station.identity
            )
        prev_edge = previous_ap.edge if previous_ap is not None else None
        # The edge the routing server will itself notify (fig. 5 step 2)
        # is the previously *registered* one — not the radio-previous
        # edge, which can lag behind when an association is superseded
        # before its registration ever happened (A->B->C where B's auth
        # lost the race: the server still has A on record, so C's
        # register notifies A, and B must ride the stale-edge relay).
        registered_prev = self._registered_edge.get(station.identity)
        ap.edge.install_wireless_endpoint(
            station, result.vn, result.group, result.rules
        )
        self._registered_edge[station.identity] = ap.edge
        mobility = registered_prev is not None and registered_prev is not ap.edge
        # Roam-chain hygiene: every edge the radio or the registration
        # pipeline ever touched — minus the current one and the one the
        # server notifies itself — gets the authoritative record relayed
        # once the server acks.
        visited = self._visited_edges.setdefault(station.identity, set())
        if prev_edge is not None:
            visited.add(prev_edge.rloc)
        if registered_prev is not None:
            visited.add(registered_prev.rloc)
        stale = set(visited)
        stale.discard(ap.edge.rloc)
        if registered_prev is not None:
            stale.discard(registered_prev.rloc)
        self._register_station(station, ap.edge.rloc, mobility, stale, t0,
                               parent_ctx=span.ctx)
        span.finish(outcome="registered")
        if on_complete is not None:
            on_complete(station, True)

    def _register_station(self, station, edge_rloc, mobility, stale_rlocs,
                          t0, parent_ctx=None):
        stale = tuple(sorted(stale_rlocs, key=int))
        # One registration-cycle span per station; it stays open until
        # the routing server's ack lands (see _on_register_ack), so its
        # duration *is* the registration half of the roam delay.
        reg_span = self.sim.tracer.span(
            "wlc_register", device=self, parent=parent_ctx,
            station=station.identity, mobility=mobility,
            stale_edges=len(stale),
        )
        if self.batching:
            self._register_station_batched(
                station, edge_rloc, mobility, stale, t0, reg_span
            )
            return
        for eid in self._station_eids(station):
            # Every family gets an acked registration so the roam-chain
            # relay refreshes stale edges' caches for *all* of the
            # station's EIDs; only the IPv4 ack is the completion sample.
            ack = True
            for server_rloc in self.register_rlocs:
                register = MapRegister(
                    station.vn, eid, edge_rloc, station.group,
                    mac=station.mac if eid.family != "mac" else None,
                    mobility=mobility,
                    registrar_rloc=self.rloc if ack else None,
                )
                register.trace_ctx = reg_span.ctx
                if ack:
                    # The register's nonce identifies this registration
                    # instance; the server echoes it in the ack, so a
                    # delayed ack from an older registration at the
                    # *same* edge (an A->B->A bounce under backlog)
                    # cannot complete the newer one.
                    key = (int(station.vn), eid)
                    self._pending_register[key] = (
                        station, stale, t0, eid.family == "ipv4",
                        register.nonce, reg_span,
                    )
                    self._arm_register_retry(key, register.nonce, 0)
                self.stats.registers_sent += 1
                self._send(server_rloc, register)
                ack = False  # one ack per EID is enough

    # ------------------------------------------------------------------ batched fast path
    def _register_station_batched(self, station, edge_rloc, mobility,
                                  stale, t0, reg_span):
        ack_server = self.register_rlocs[0]
        for server_rloc in self.register_rlocs:
            for eid in self._station_eids(station):
                record = EidRecord(
                    station.vn, eid, edge_rloc, group=station.group,
                    mac=station.mac if eid.family != "mac" else None,
                    mobility=mobility,
                )
                nonce = self._submit_record(server_rloc, record)
                self.stats.register_records_sent += 1
                if server_rloc == ack_server:
                    # Same instance-pinning contract as the unbatched
                    # path, with the *batch* nonce standing in for the
                    # per-message one.  (The flushed batch message mixes
                    # stations, so it carries no single trace context;
                    # the per-station reg_span still closes on its ack.)
                    key = (int(station.vn), eid)
                    self._pending_register[key] = (
                        station, stale, t0, eid.family == "ipv4", nonce,
                        reg_span,
                    )
                    self._arm_register_retry(key, nonce, 0)

    def _submit_record(self, server_rloc, record):
        """Queue a record on a server's open batch; returns its nonce.

        The batch nonce is minted when the batch opens so pending-ack
        bookkeeping can reference it before the flush builds the actual
        message.
        """
        batcher = self._batchers.get(server_rloc)
        if batcher is None:
            batcher = Batcher(
                self.sim,
                lambda records, rloc=server_rloc:
                    self._flush_registers(rloc, records),
                window_s=self.register_flush_s * self._bp_factor,
            )
            batcher.flush_hist = self.batch_flush_hist
            self._batchers[server_rloc] = batcher
        if batcher.pending == 0:
            self._batch_nonce[server_rloc] = next_nonce()
        # Capture before submit(): a synchronous flush (max_items, or
        # any future flush-now path) pops the open-batch nonce.
        nonce = self._batch_nonce[server_rloc]
        batcher.submit(record)
        return nonce

    def _flush_registers(self, server_rloc, records):
        nonce = self._batch_nonce.pop(server_rloc, None)
        # Only the first server's registrations are acked (one ack per
        # record instance is enough) and a withdraw-only batch needs no
        # ack at all.
        want_ack = (server_rloc == self.register_rlocs[0]
                    and any(not record.withdraw for record in records))
        register = MapRegister(
            records=records,
            registrar_rloc=self.rloc if want_ack else None,
            nonce=nonce,
        )
        self.stats.registers_sent += 1
        self.stats.register_batches_sent += 1
        self._send(server_rloc, register)

    # ------------------------------------------------------------------ registration retry
    def _arm_register_retry(self, key, nonce, attempt):
        """Chaos-suite resend timer for one pinned registration instance."""
        if self.register_retry is None:
            return
        self.sim.schedule(self.register_retry.delay_s(attempt, self._rng),
                          self._check_register_ack, key, nonce, attempt)

    def _check_register_ack(self, key, nonce, attempt):
        pending = self._pending_register.get(key)
        if pending is None or pending[4] != nonce:
            return  # acked, withdrawn, or superseded by a newer roam
        station, stale, t0, is_completion, _nonce, reg_span = pending
        # Re-register from *current* truth, not the original snapshot:
        # the station may have roamed while the ack was outstanding.
        edge = self._registered_edge.get(station.identity)
        if edge is None:
            del self._pending_register[key]
            return  # withdrawn in the meantime; nothing to claim
        if self.register_retry.exhausted(attempt):
            del self._pending_register[key]
            self.stats.register_retry_exhausted += 1
            reg_span.finish(outcome="retry_exhausted")
            return
        if self.breaker_policy is not None:
            breaker = self._breaker()
            breaker.record_failure()
            if not breaker.allow():
                # Breaker open: hold the registration (pending entry and
                # nonce stay pinned) and probe when it half-opens; the
                # attempt is not burned.
                self.breaker_deferrals += 1
                self.sim.schedule(
                    max(breaker.remaining_s, self.register_retry.base_s),
                    self._check_register_ack, key, nonce, attempt,
                )
                return
        self.stats.register_retries_sent += 1
        vn, eid = key
        ack = True
        for server_rloc in self.register_rlocs:
            register = MapRegister(
                vn, eid, edge.rloc, station.group,
                mac=station.mac if eid.family != "mac" else None,
                mobility=False,
                registrar_rloc=self.rloc if ack else None,
            )
            register.trace_ctx = reg_span.ctx
            if ack:
                self._pending_register[key] = (
                    station, stale, t0, is_completion, register.nonce,
                    reg_span,
                )
                self._arm_register_retry(key, register.nonce, attempt + 1)
            self.stats.registers_sent += 1
            self._send(server_rloc, register)
            ack = False

    def _breaker(self):
        """The circuit breaker guarding the ack server's retry path."""
        if self._ack_breaker is None:
            self._ack_breaker = CircuitBreaker(self.sim, self.breaker_policy,
                                               rng=self._rng)
        return self._ack_breaker

    def _note_backpressure(self, overloaded):
        """Mirror of the edge's AIMD reaction to the overloaded bit."""
        factor = self._bp_factor
        if overloaded:
            self.bp_overload_acks += 1
            factor = min(self.bp_max_factor, factor * 2.0)
        else:
            factor = max(1.0, factor * 0.5)
        if factor != self._bp_factor:
            self._bp_factor = factor
            for batcher in self._batchers.values():
                batcher.window_s = self.register_flush_s * factor

    def _on_register_ack(self, notify):
        """Routing server committed proxied registration(s).

        Handles both the classic single-record ack and the aggregated
        batch ack; stale-edge relays are re-aggregated per edge so a
        batch of N roams costs each stale edge one message, not N.
        """
        if self.breaker_policy is not None:
            # Any ack proves the ack server is answering again.
            self._breaker().record_success()
        if self.backpressure:
            self._note_backpressure(notify.overloaded)
        relays = {}        # stale rloc -> [record copies]
        completions = []   # (station, delay) in ack order
        for record in notify.mapping_records:
            key = (int(record.vn), record.eid)
            pending = self._pending_register.get(key)
            if pending is None:
                continue  # duplicate ack (multi-server fan-out) or stale
            station, stale_rlocs, t0, is_completion, nonce, reg_span = pending
            if notify.nonce != nonce:
                continue  # ack for a superseded registration instance
            if station.edge is None or record.rloc != station.edge.rloc:
                # Ack from a registration the station already roamed
                # past; the in-flight newer registration's ack completes
                # instead.
                continue
            del self._pending_register[key]
            self.stats.registrar_acks_received += 1
            reg_span.finish(outcome="acked")
            for rloc in stale_rlocs:
                self.stats.stale_edge_notifies += 1
                relays.setdefault(rloc, []).append(record.copy())
            if is_completion:
                completions.append((station, self.sim.now - t0))
        for rloc, records in relays.items():
            if len(records) == 1:
                relay = MapNotify(records[0].vn, records[0].eid, records[0])
            else:
                relay = MapNotify(records=records)
            relay.trace_ctx = notify.trace_ctx
            self._send(rloc, relay)
        for station, delay in completions:
            self.registration_delays.append(delay)
            if self.on_registered is not None:
                self.on_registered(station, delay)

    # ------------------------------------------------------------------ disassociation
    def disassociate(self, station):
        """Station leaves the wireless network entirely (radio off)."""
        ap = station.ap
        if ap is None:
            return
        ap.drop_station(station)
        station.ap = None
        self._cpu.submit(self.service_s, self._process_disassociation, station)

    def _process_disassociation(self, station):
        if station.ap is not None:
            return  # re-associated while queued; the association wins
        self.stats.disassociations += 1
        self._withdraw(station, reason="disassociate")

    # ------------------------------------------------------------------ cross-site handoff
    def registered_edge(self, station):
        """The edge this WLC currently has the station registered at.

        ``None`` when this control plane holds no registration (never
        onboarded here, withdrawn, or onboarding still in flight).  The
        multi-site facade scans this across sites to decide which WLCs
        owe a :meth:`handoff_out` withdrawal — the facade's own location
        bookkeeping is cleared *synchronously* on disassociation, so it
        cannot be trusted to name the site whose (queued, possibly
        superseded) withdrawal never ran.
        """
        return self._registered_edge.get(station.identity)

    def handoff_out(self, station):
        """The station now lives behind *another site's* control plane.

        An inter-site roam cannot ride the fig. 5 notify: the foreign
        site's registration lands in a different routing server, so this
        WLC's registration would linger forever and blackhole local
        senders into the old edge.  The multi-site facade therefore asks
        the departed site's WLC for an explicit withdrawal — the wireless
        mirror of the wired ``detach_endpoint(deregister=True)`` step of
        :meth:`repro.multisite.network.MultiSiteNetwork.roam`.

        The withdrawal is queued on the control CPU like any association
        event, so it keeps FIFO order against a quick roam *back*: the
        return association is always processed after the withdrawal it
        supersedes.
        """
        self._cpu.submit(self.service_s, self._process_handoff, station)

    def _process_handoff(self, station):
        if self._registered_edge.get(station.identity) is None:
            return  # never registered here (or already withdrawn)
        self.stats.handoffs_out += 1
        # The departed-site withdrawal is causally part of the roam that
        # displaced the station — parent it on the roam's root span.
        self._withdraw(station, reason="handoff_out",
                       parent=getattr(station, "trace_ctx", None))

    def _withdraw(self, station, reason="withdraw", parent=None):
        """Remove every trace of a station's location registration.

        Withdrawal works from the registrar's own ``_registered_edge``
        record — *not* from ``station.edge``, which is transiently None
        whenever a cross-edge roam is still in flight (the exact moment
        a disassociation or rejected re-auth can land).
        """
        edge = self._registered_edge.pop(station.identity, None)
        if edge is None or station.vn is None:
            return  # never finished onboarding; nothing registered
        span = self.sim.tracer.span(
            "wlc_withdraw", device=self, parent=parent,
            station=station.identity, reason=reason,
        )
        edge.remove_wireless_endpoint(station)
        for eid in self._station_eids(station):
            self._pending_register.pop((int(station.vn), eid), None)
            for server_rloc in self.register_rlocs:
                self.stats.unregisters_sent += 1
                if self.batching:
                    # In-band withdrawal: the record rides the same
                    # FIFO batch as any still-buffered registration, so
                    # the server can never apply them out of order.
                    self._submit_record(
                        server_rloc,
                        EidRecord(station.vn, eid, edge.rloc, withdraw=True),
                    )
                else:
                    unregister = MapUnregister(station.vn, eid, edge.rloc)
                    unregister.trace_ctx = span.ctx
                    self._send(server_rloc, unregister)
        span.finish()
        # The roam history is deliberately *kept*: edges visited before
        # the withdrawal still hold notify-installed cache entries, and
        # only the next registration's relay can refresh them (there is
        # no negative notify).  The set is bounded by the edge count.

    # ------------------------------------------------------------------ transport
    def _station_eids(self, station):
        eids = []
        if "ipv4" in self.register_families and station.ip is not None:
            eids.append(station.ip.to_prefix())
        if "ipv6" in self.register_families and station.ipv6 is not None:
            eids.append(station.ipv6.to_prefix())
        if "mac" in self.register_families and station.mac is not None:
            eids.append(station.mac.to_prefix())
        return eids

    def _on_packet(self, packet):
        message = packet.payload
        kind = getattr(message, "kind", None)
        if kind == AccessResult.kind:
            self._finish_auth(message)
        elif kind == MapNotify.kind:
            self._on_register_ack(message)
        # Anything else is ignored (the WLC has no data plane).

    def _send(self, dst_rloc, message):
        self.underlay.send(
            self.rloc, dst_rloc, control_packet(self.rloc, dst_rloc, message)
        )

    def __repr__(self):
        return "FabricWlc(rloc=%s, aps=%d)" % (self.rloc, len(self._aps))
