"""WirelessFabric: fabric-enabled wireless over a FabricNetwork.

Assembles the wireless subsystem onto an existing fabric: one
control-plane-only WLC attached to the underlay, plus fabric APs hung
off the edge routers.  Exposes the operator verbs the workloads and
experiments drive (``create_station`` / ``associate`` / ``roam`` /
``disassociate``), mirroring :class:`repro.fabric.FabricNetwork`'s
wired verbs (``create_endpoint`` / ``admit`` / ``roam`` / ``depart``).
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.net.addresses import IPv4Address
from repro.wireless.ap import AIR_DELAY_S, UPLINK_DELAY_S, FabricAp
from repro.wireless.station import Station
from repro.wireless.wlc import FabricWlc

#: RLOC numbering: the WLC joins the infra service block, APs get
#: uplink addresses in 192.168.128.0/17 (disjoint from edges/borders).
_RLOC_WLC = "192.168.255.30"
_AP_ADDRESS_BASE = 0xC0A88001


def _finish_root(span, on_complete):
    """Close a roam/associate root span when the onboarding completes.

    Root spans are finished through the completion callback (not a
    context manager) because onboarding is asynchronous: the verb
    returns immediately and the flow ends events later at the WLC.
    Superseded onboardings whose callback never fires leave the span
    open; export marks it ``unfinished``.
    """

    def _done(station, accepted):
        span.finish(accepted=accepted)
        if on_complete is not None:
            on_complete(station, accepted)

    return _done


class WirelessConfig:
    """Knobs for the wireless overlay (paper-flavoured defaults)."""

    def __init__(self, aps_per_edge=1, wlc_service_s=150e-6,
                 air_delay_s=AIR_DELAY_S, uplink_delay_s=UPLINK_DELAY_S,
                 register_families=("ipv4", "mac"),
                 batching=False, register_flush_s=2e-3,
                 register_retry=None,
                 backpressure=False, breaker=None):
        if aps_per_edge < 1:
            raise ConfigurationError("need at least one AP per edge")
        self.aps_per_edge = aps_per_edge
        self.wlc_service_s = wlc_service_s
        self.air_delay_s = air_delay_s
        self.uplink_delay_s = uplink_delay_s
        self.register_families = tuple(register_families)
        #: control-plane fast path: the WLC coalesces per-family
        #: registers per routing server within this flush window
        self.batching = batching
        self.register_flush_s = register_flush_s
        #: chaos-suite recovery: a RetryPolicy for unacked registrations
        #: (None keeps the one-shot baseline)
        self.register_retry = register_retry
        #: overload armor (default off): ``backpressure`` reacts to the
        #: in-band overloaded bit on register acks; ``breaker`` is a
        #: :class:`repro.core.BreakerPolicy` guarding the retry path.
        self.backpressure = backpressure
        self.breaker = breaker


class WirelessFabric:
    """The wireless overlay: one WLC + APs on every edge."""

    def __init__(self, net, config=None):
        self.net = net
        self.config = config or WirelessConfig()
        cfg = self.config
        self.wlc = FabricWlc(
            net.sim, net.underlay,
            rloc=IPv4Address.parse(_RLOC_WLC),
            node=net.spine_nodes[-1],
            register_rlocs=[server.rloc for server in net.routing_servers],
            policy_server_rloc=net.policy_server.rloc,
            dhcp=net.dhcp,
            service_s=cfg.wlc_service_s,
            register_families=cfg.register_families,
            batching=cfg.batching,
            register_flush_s=cfg.register_flush_s,
            register_retry=cfg.register_retry,
            backpressure=cfg.backpressure,
            breaker=cfg.breaker,
        )
        self.aps = []
        for edge in net.edges:
            for radio in range(cfg.aps_per_edge):
                ap = FabricAp(
                    net.sim, "%s-ap%d" % (edge.name, radio), edge, self.wlc,
                    address=IPv4Address(_AP_ADDRESS_BASE + len(self.aps)),
                    air_delay_s=cfg.air_delay_s,
                    uplink_delay_s=cfg.uplink_delay_s,
                )
                self.aps.append(ap)

    # ------------------------------------------------------------------ operator verbs
    def create_station(self, identity, group, vn, secret="secret", sink=None):
        """Enroll a wireless identity and mint its Station object."""
        return self.net.create_endpoint(identity, group, vn, secret=secret,
                                        sink=sink, factory=Station)

    def _resolve_ap(self, ap):
        return self.aps[ap] if isinstance(ap, int) else ap

    def associate(self, station, ap, on_complete=None):
        """Bring a station onto an AP's radio (onboarding runs async)."""
        ap = self._resolve_ap(ap)
        tracer = self.net.sim.tracer
        if tracer.enabled:
            span = tracer.span("wireless_associate", device="wireless",
                               station=station.identity, ap=ap.name)
            station.trace_ctx = span.ctx
            on_complete = _finish_root(span, on_complete)
        ap.associate(station, on_complete=on_complete)

    def roam(self, station, new_ap, on_complete=None):
        """Move a station to another AP — the same verb as associate;
        the WLC works out whether location state must move."""
        self.associate(station, new_ap, on_complete=on_complete)

    def disassociate(self, station):
        """Radio off: the WLC withdraws the station's registration."""
        self.wlc.disassociate(station)

    # ------------------------------------------------------------------ metrics
    def aps_on_edge(self, edge):
        if isinstance(edge, int):
            edge = self.net.edges[edge]
        return [ap for ap in self.aps if ap.edge is edge]

    def station_count(self):
        return sum(len(ap.stations) for ap in self.aps)

    def __repr__(self):
        return "WirelessFabric(aps=%d, stations=%d)" % (
            len(self.aps), self.station_count()
        )


class MultiSiteWireless:
    """Wireless overlays on every site of a multi-site fabric.

    One :class:`WirelessFabric` (WLC + APs) per site, plus the glue that
    makes a station roam *between* sites with control-plane signaling
    only — the composition the paper's fabric story culminates in:

    * the radio handoff is the ordinary AP-to-AP associate; the foreign
      site's WLC runs 802.1X against its own policy server (every site
      enrolled the identity), keeps the home-leased IP (L3 mobility) and
      registers the station at the foreign edge in the *foreign* site's
      routing servers;
    * the departed site's WLC cannot be reached by the foreign fig. 5
      notify (separate control planes), so the facade asks it for an
      explicit :meth:`FabricWlc.handoff_out` withdrawal;
    * the foreign border announces the move to the home border
      (``AwayRegister`` with the PR 4 ``initiated_at`` ordering guard),
      which anchors the EID and hairpins home-site traffic over the
      transit; roaming back home (or disassociating while away)
      withdraws the anchor via the ``withdraw_location`` /
      ``_withdraw`` mirror paths.

    Per-endpoint roaming state stays inside the two sites involved; the
    transit map-server still only ever sees aggregates.
    """

    def __init__(self, net, config=None):
        self.net = net                      # a MultiSiteNetwork
        self.config = config or WirelessConfig()
        #: one WirelessFabric per site (same knobs everywhere)
        self.site_wireless = [
            WirelessFabric(site, self.config) for site in net.sites
        ]
        #: global AP numbering: site-major, matching ``site_wireless``
        self.aps = []
        self._ap_site = {}                  # FabricAp -> site index
        self._ap_index = {}                 # FabricAp -> global AP index
        for index, wireless in enumerate(self.site_wireless):
            for ap in wireless.aps:
                self._ap_site[ap] = index
                self._ap_index[ap] = len(self.aps)
                self.aps.append(ap)

    # ------------------------------------------------------------------ lookups
    def site_of_ap(self, ap):
        """Site index serving an AP (accepts a global AP index too)."""
        return self._ap_site[self._resolve_ap(ap)]

    def ap_index(self, ap):
        """Global index of an AP (O(1); the walk workloads' hot lookup)."""
        return self._ap_index[ap]

    def wlc(self, site):
        return self.site_wireless[self.net.site_index(site)].wlc

    @property
    def wlcs(self):
        return [wireless.wlc for wireless in self.site_wireless]

    def _resolve_ap(self, ap):
        return self.aps[ap] if isinstance(ap, int) else ap

    # ------------------------------------------------------------------ operator verbs
    def create_station(self, identity, group, vn, secret="secret", sink=None):
        """Enroll a wireless identity fabric-wide and mint its Station."""
        return self.net.create_endpoint(identity, group, vn, secret=secret,
                                        sink=sink, factory=Station)

    def associate(self, station, ap, on_complete=None):
        """Bring a station onto any AP's radio, in any site.

        A cross-site move first asks the currently-registered site's WLC
        to withdraw (see :meth:`FabricWlc.handoff_out`); the facade's
        location bookkeeping — and with it the away-announce /
        return-announce flow — rides the onboarding completion exactly
        like a wired ``admit``/``roam``.
        """
        ap = self._resolve_ap(ap)
        site_index = self._ap_site[ap]
        # Root the whole flow — departed-site withdrawal, foreign-site
        # onboarding, away signaling — in one span *before* the
        # handoff_out loop, so every leg parents on the same trace.
        tracer = self.net.sim.tracer
        on_complete = self.net.attach_completion(site_index, on_complete)
        if tracer.enabled:
            span = tracer.span("wireless_roam", device="fabric",
                               station=station.identity, ap=ap.name,
                               target_site=site_index)
            station.trace_ctx = span.ctx
            on_complete = _finish_root(span, on_complete)
        # Withdraw from every *other* site whose control plane still has
        # the station registered.  This is keyed on the WLCs' own
        # records, not the facade's location bookkeeping: a disassociate
        # whose queued withdrawal was cancelled by this very association
        # ("association wins") leaves a registration alive in a site the
        # facade no longer claims — and a foreign-site association can
        # never withdraw it via fig. 5.
        for index, wireless in enumerate(self.site_wireless):
            if index == site_index:
                continue
            if wireless.wlc.registered_edge(station) is not None:
                wireless.wlc.handoff_out(station)
        ap.associate(station, on_complete=on_complete)

    def roam(self, station, new_ap, on_complete=None):
        """Same verb as associate — the facade and the WLCs work out
        whether the move is intra-edge, inter-edge or inter-site."""
        self.associate(station, new_ap, on_complete=on_complete)

    def disassociate(self, station):
        """Radio off: the serving site withdraws the registration and the
        facade withdraws the location claim (incl. a stale home anchor)."""
        ap = station.ap
        if ap is not None:
            self.site_wireless[self._ap_site[ap]].wlc.disassociate(station)
        self.net.withdraw_location(station)

    # ------------------------------------------------------------------ metrics
    def station_count(self):
        return sum(w.station_count() for w in self.site_wireless)

    def __repr__(self):
        return "MultiSiteWireless(sites=%d, aps=%d, stations=%d)" % (
            len(self.site_wireless), len(self.aps), self.station_count()
        )
