"""WirelessFabric: fabric-enabled wireless over a FabricNetwork.

Assembles the wireless subsystem onto an existing fabric: one
control-plane-only WLC attached to the underlay, plus fabric APs hung
off the edge routers.  Exposes the operator verbs the workloads and
experiments drive (``create_station`` / ``associate`` / ``roam`` /
``disassociate``), mirroring :class:`repro.fabric.FabricNetwork`'s
wired verbs (``create_endpoint`` / ``admit`` / ``roam`` / ``depart``).
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.net.addresses import IPv4Address
from repro.wireless.ap import AIR_DELAY_S, UPLINK_DELAY_S, FabricAp
from repro.wireless.station import Station
from repro.wireless.wlc import FabricWlc

#: RLOC numbering: the WLC joins the infra service block, APs get
#: uplink addresses in 192.168.128.0/17 (disjoint from edges/borders).
_RLOC_WLC = "192.168.255.30"
_AP_ADDRESS_BASE = 0xC0A88001


class WirelessConfig:
    """Knobs for the wireless overlay (paper-flavoured defaults)."""

    def __init__(self, aps_per_edge=1, wlc_service_s=150e-6,
                 air_delay_s=AIR_DELAY_S, uplink_delay_s=UPLINK_DELAY_S,
                 register_families=("ipv4", "mac"),
                 batching=False, register_flush_s=2e-3):
        if aps_per_edge < 1:
            raise ConfigurationError("need at least one AP per edge")
        self.aps_per_edge = aps_per_edge
        self.wlc_service_s = wlc_service_s
        self.air_delay_s = air_delay_s
        self.uplink_delay_s = uplink_delay_s
        self.register_families = tuple(register_families)
        #: control-plane fast path: the WLC coalesces per-family
        #: registers per routing server within this flush window
        self.batching = batching
        self.register_flush_s = register_flush_s


class WirelessFabric:
    """The wireless overlay: one WLC + APs on every edge."""

    def __init__(self, net, config=None):
        self.net = net
        self.config = config or WirelessConfig()
        cfg = self.config
        self.wlc = FabricWlc(
            net.sim, net.underlay,
            rloc=IPv4Address.parse(_RLOC_WLC),
            node=net.spine_nodes[-1],
            register_rlocs=[server.rloc for server in net.routing_servers],
            policy_server_rloc=net.policy_server.rloc,
            dhcp=net.dhcp,
            service_s=cfg.wlc_service_s,
            register_families=cfg.register_families,
            batching=cfg.batching,
            register_flush_s=cfg.register_flush_s,
        )
        self.aps = []
        for edge in net.edges:
            for radio in range(cfg.aps_per_edge):
                ap = FabricAp(
                    net.sim, "%s-ap%d" % (edge.name, radio), edge, self.wlc,
                    address=IPv4Address(_AP_ADDRESS_BASE + len(self.aps)),
                    air_delay_s=cfg.air_delay_s,
                    uplink_delay_s=cfg.uplink_delay_s,
                )
                self.aps.append(ap)

    # ------------------------------------------------------------------ operator verbs
    def create_station(self, identity, group, vn, secret="secret", sink=None):
        """Enroll a wireless identity and mint its Station object."""
        return self.net.create_endpoint(identity, group, vn, secret=secret,
                                        sink=sink, factory=Station)

    def _resolve_ap(self, ap):
        return self.aps[ap] if isinstance(ap, int) else ap

    def associate(self, station, ap, on_complete=None):
        """Bring a station onto an AP's radio (onboarding runs async)."""
        self._resolve_ap(ap).associate(station, on_complete=on_complete)

    def roam(self, station, new_ap, on_complete=None):
        """Move a station to another AP — the same verb as associate;
        the WLC works out whether location state must move."""
        self._resolve_ap(new_ap).associate(station, on_complete=on_complete)

    def disassociate(self, station):
        """Radio off: the WLC withdraws the station's registration."""
        self.wlc.disassociate(station)

    # ------------------------------------------------------------------ metrics
    def aps_on_edge(self, edge):
        if isinstance(edge, int):
            edge = self.net.edges[edge]
        return [ap for ap in self.aps if ap.edge is edge]

    def station_count(self):
        return sum(len(ap.stations) for ap in self.aps)

    def __repr__(self):
        return "WirelessFabric(aps=%d, stations=%d)" % (
            len(self.aps), self.station_count()
        )
