"""Station/AP plumbing shared by the CAPWAP baseline and fabric wireless.

The sec. 2 ablation and the wireless-handover experiment compare two
data planes (tunnel-everything-to-the-controller vs. VXLAN-at-the-AP).
For the comparison to mean anything, both sides must drive *identical*
stations: same placement, same traffic process, same measurement hooks.
This module is that single copy — the experiment files supply only the
data plane under test.

* :class:`StationPairPlan` — deterministic placement of N src/dst
  station pairs over M APs (pair *i* talks from AP ``i % M`` to AP
  ``(i+1) % M``, so every pair crosses APs).
* :func:`make_stations` — mint bare :class:`Station` objects.  The
  CAPWAP baseline attaches these directly (static IPs); the fabric
  enrolls the same shape through :class:`WirelessFabric`.
* :class:`DelaySamples` — stamp packets at injection, record delivery
  delay at the sink (re-exported from :mod:`repro.stats`).
* :class:`PoissonPairTraffic` — open-loop Poisson injection per pair.
  Because :meth:`Station.send` dispatches through whatever AP the
  station is associated with, the very same injector drives both data
  planes.
* :class:`HandoverRecorder` — detach-to-restore delay bookkeeping,
  re-exported from :mod:`repro.stats` (the warehouse massive-mobility
  workload uses the same recorder).
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.net.addresses import IPv4Address, MacAddress
from repro.net.packet import make_udp_packet
from repro.stats.recorders import DelaySamples, HandoverRecorder
from repro.wireless.station import Station

__all__ = [
    "DelaySamples",
    "HandoverRecorder",
    "PoissonPairTraffic",
    "StationPairPlan",
    "SteadyStream",
    "assign_static_ips",
    "make_stations",
]


class StationPairPlan:
    """Deterministic src/dst placement of station pairs over APs."""

    def __init__(self, num_pairs, num_aps):
        if num_pairs < 1 or num_aps < 2:
            raise ConfigurationError(
                "a pair plan needs >= 1 pair and >= 2 APs"
            )
        self.num_pairs = num_pairs
        self.num_aps = num_aps
        #: rows of ``(pair_index, src_ap_index, dst_ap_index)``
        self.pairs = [
            (index, index % num_aps, (index + 1) % num_aps)
            for index in range(num_pairs)
        ]

    def __iter__(self):
        return iter(self.pairs)

    def __len__(self):
        return self.num_pairs

    def station_pairs(self, sources, dests):
        """Zip minted stations into the plan's ``(src, dst)`` pairs."""
        return [(sources[index], dests[index]) for index, _s, _d in self.pairs]


def make_stations(count, prefix="sta", base_mac=0x02_0A_00_00_00_00,
                  secret="secret", sink=None):
    """Mint ``count`` bare stations (no fabric enrollment, no IPs)."""
    return [
        Station("%s-%d" % (prefix, index), MacAddress(base_mac + index + 1),
                secret=secret, sink=sink)
        for index in range(count)
    ]


def assign_static_ips(stations, base_ip=0x0A00010A, vn=None):
    """Give stations sequential overlay IPs (CAPWAP runs have no DHCP)."""
    base = int(base_ip)
    for offset, station in enumerate(stations):
        station.ip = IPv4Address(base + offset)
        if vn is not None:
            station.vn = vn
    return stations


class PoissonPairTraffic:
    """Open-loop Poisson packet injection, one process per pair.

    ``rate_pps`` is the *aggregate* offered load; each pair injects at
    ``rate_pps / num_pairs``.  The injection path is
    ``station.send(...)``, which reaches whichever data plane the
    station is associated with — CAPWAP tunnel or fabric AP.
    """

    def __init__(self, sim, rng, pairs, rate_pps, samples=None,
                 packet_size=800):
        self.sim = sim
        self.rng = rng
        #: list of ``(src_station, dst_station)``
        self.pairs = list(pairs)
        if not self.pairs:
            raise ConfigurationError("traffic needs at least one pair")
        self.per_pair_rate = rate_pps / len(self.pairs)
        self.samples = samples
        self.packet_size = packet_size
        self.active = False
        self.packets_injected = 0

    def start(self):
        self.active = True
        for src, dst in self.pairs:
            self.sim.schedule(
                self.rng.expovariate(self.per_pair_rate), self._tick, src, dst
            )

    def stop(self):
        self.active = False

    def _tick(self, src, dst):
        if not self.active:
            return
        self._inject(src, dst)
        self.sim.schedule(
            self.rng.expovariate(self.per_pair_rate), self._tick, src, dst
        )

    def _inject(self, src, dst):
        if src.ap is None or src.ip is None or dst.ip is None:
            return  # mid-roam / not onboarded: the radio has no link
        packet = make_udp_packet(src.ip, dst.ip, 40000, 40000,
                                 size=self.packet_size)
        if self.samples is not None:
            self.samples.stamp(packet)
        src.send(packet)
        self.packets_injected += 1


class SteadyStream:
    """Fixed-interval packet stream towards one station (roam monitor)."""

    def __init__(self, sim, src, dst, interval_s, offset_s=0.0,
                 packet_size=1500):
        self.sim = sim
        self.src = src
        self.dst = dst
        self.interval_s = interval_s
        self.packet_size = packet_size
        self.active = False
        self._offset_s = offset_s

    def start(self):
        self.active = True
        self.sim.schedule(self._offset_s, self._tick)

    def stop(self):
        self.active = False

    def _tick(self):
        if not self.active:
            return
        if self.src.ap is not None and self.src.ip is not None \
                and self.dst.ip is not None:
            packet = make_udp_packet(self.src.ip, self.dst.ip, 40000, 40001,
                                     size=self.packet_size)
            self.src.send(packet)
        self.sim.schedule(self.interval_s, self._tick)


